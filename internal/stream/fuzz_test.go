package stream

import (
	"bytes"
	"testing"
)

// fuzzConfig is the fixed configuration FuzzRestoreStream restores under.
// Restore refuses payloads fingerprinted for any other configuration, so
// the interesting mutation space is the state that follows the
// fingerprint; keeping the configuration constant points the fuzzer at it.
func fuzzConfig() Config {
	return Config{Window: 30, BufLen: 150, Hop: 60, EnsembleSize: 4, Seed: 5}
}

// fuzzSnapshots produces real snapshot payloads at structurally distinct
// stream stages: empty, pre-first-run, mid-stream with completed hop runs,
// and flushed. These seed the fuzz corpus so mutations start from inputs
// that reach the deep decode paths, and give the determinism tests a
// stable set of valid payloads.
func fuzzSnapshots(t testing.TB) [][]byte {
	t.Helper()
	cfg := fuzzConfig()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := sineSeries(400, 30, 9, 200)
	snaps := [][]byte{d.Snapshot()}
	for i, x := range series {
		if err := d.Push(x); err != nil {
			t.Fatal(err)
		}
		switch i {
		case 100, 199, 350: // pre-first-run, at a run boundary, mid-stream
			snaps = append(snaps, d.Snapshot())
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	return append(snaps, d.Snapshot())
}

// FuzzRestoreStream pins the Restore robustness contract: for an arbitrary
// payload — truncated, bit-flipped, or wholly synthetic — Restore either
// returns an error or produces a detector that keeps working; it never
// panics and never trusts a decoded length or offset enough to allocate or
// index unboundedly. The seed corpus (testdata/fuzz/FuzzRestoreStream)
// holds real snapshots from fuzzSnapshots plus truncated and corrupted
// variants; the mutator works outward from those.
func FuzzRestoreStream(f *testing.F) {
	for _, snap := range fuzzSnapshots(f) {
		f.Add(snap)
		f.Add(snap[:len(snap)/2])
		flipped := append([]byte(nil), snap...)
		flipped[len(flipped)*3/4] ^= 0x10
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("EGISNAP1"))
	cfg := fuzzConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Restore(cfg, data)
		if err != nil {
			if d != nil {
				t.Fatal("Restore returned a detector alongside an error")
			}
			return
		}
		// A payload that decodes cleanly must yield a usable detector:
		// pushing and flushing may reject the stream with an error (the
		// engine re-checks spans), but must not panic.
		for i := 0; i < 2*cfg.Window; i++ {
			if err := d.Push(float64(i % 7)); err != nil {
				return
			}
		}
		_ = d.Flush()
	})
}

// TestRestoreFuzzSeeds replays the checked-in property directly so the
// ordinary test run (no -fuzz flag) covers the seed corpus shapes: every
// real snapshot restores, and single-bit corruption anywhere in the
// payload either errors or restores into a detector that survives further
// pushes.
func TestRestoreFuzzSeeds(t *testing.T) {
	cfg := fuzzConfig()
	for si, snap := range fuzzSnapshots(t) {
		if _, err := Restore(cfg, snap); err != nil {
			t.Fatalf("snapshot %d: clean restore failed: %v", si, err)
		}
		for pos := 0; pos < len(snap); pos += 13 {
			bad := append([]byte(nil), snap...)
			bad[pos] ^= 1 << (pos % 8)
			if bytes.Equal(bad, snap) {
				continue
			}
			d, err := Restore(cfg, bad)
			if err != nil {
				continue
			}
			for i := 0; i < cfg.Window; i++ {
				if err := d.Push(float64(i)); err != nil {
					break
				}
			}
			_ = d.Flush()
		}
		for cut := 0; cut < len(snap); cut += 7 {
			if _, err := Restore(cfg, snap[:cut]); err == nil {
				t.Fatalf("snapshot %d: truncation to %d bytes restored cleanly", si, cut)
			}
		}
	}
}
