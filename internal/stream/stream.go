// Package stream is the online face of the ensemble detector: points are
// pushed one at a time (or in batches), memory stays bounded by the ring
// buffer, and anomaly events are emitted as the ensemble rule density
// curve confirms new minima.
//
// Since the engine refactor the detector owns no pipeline of its own: it
// keeps a rolling prefix-sum ring (timeseries.RingFeatures) over the most
// recent BufLen points and, every Hop points, asks a long-lived
// engine.Engine for the ensemble result over the buffered span — one "hop
// run" per chunk, seeded exactly like core.DetectChunked seeds its chunks.
// The engine reuses each member's discretization across overlapping hops
// (only the new suffix windows are encoded per run), amortizes grammar
// induction the same way — each member's resumable grammar is appended the
// hop's new tokens and periodically rebased onto the live buffer, see
// Config.RebaseEvery — and pools the hot-path scratch, so steady-state
// pushes allocate almost nothing; discretization is bit-identical to
// from-scratch runs, and the resumable grammar to a from-scratch induction
// over its epoch's tokens, properties the engine and stream tests pin.
// The per-run ensemble curves (each already normalized onto
// [0,1]) are stitched by averaging in overlap regions. A stream position
// is *final* once no future hop run can cover it, i.e. once the buffer has
// slid past it; only then are its window scores computed and events
// decided, so an emitted Event never changes retroactively.
//
// With the default Hop (BufLen - Window + 1, the DetectChunked stride) the
// stitched curve is byte-identical to core.DetectChunked over the same
// points, and a stream whose buffer never overflows (BufLen >= stream
// length) reproduces core.Detect exactly at Flush. Smaller hops trade
// extra recomputation for lower detection latency and smoother stitching —
// and profit the most from incremental re-discretization, since
// consecutive spans then overlap almost entirely.
//
// Amortized cost per pushed point is the ensemble cost of one buffer
// divided by Hop — independent of the stream length, and, at the default
// hop, independent of BufLen too.
package stream

import (
	"errors"
	"fmt"
	"math"

	"egi/internal/engine"
	"egi/internal/grammar"
	"egi/internal/timeseries"
)

// Defaults for the streaming-specific knobs. The ensemble knobs default in
// the engine (paper §7 values).
const (
	// DefaultBufFactor sets BufLen = DefaultBufFactor * Window when
	// BufLen is not given.
	DefaultBufFactor = 10
	// DefaultThreshold is the event threshold on the stitched window
	// score: a dip of the score curve to or below it emits one Event.
	// Scores live in [0,1] (normalized ensemble rule density; lower =
	// more anomalous).
	DefaultThreshold = 0.2
)

// seedStride separates per-run seeds; identical to the per-chunk seed
// stride of core.DetectChunked, which is what makes the default-hop
// stream bit-compatible with the chunked batch detector.
const seedStride = engine.SeedStride

// Errors reported by the detector.
var (
	ErrFlushed      = errors.New("stream: detector already flushed")
	ErrNonFinite    = errors.New("stream: non-finite point")
	ErrNotReady     = errors.New("stream: not enough covered points yet")
	ErrBadBufLen    = errors.New("stream: buffer length must be at least 4x the window")
	ErrBadHop       = errors.New("stream: hop must be in [1, buflen-window+1]")
	ErrBadThreshold = errors.New("stream: threshold must be in (0, 1] (zero selects the default)")
	ErrBadQuantile  = errors.New("stream: adaptive quantile must be in (0, 1)")
)

// NonFinitePolicy selects what Push does with a NaN or ±Inf point. The
// ingest boundary is the only place non-finite values can enter: past it,
// one NaN silently poisons z-normalization, the SAX words and every
// downstream density curve for the rest of the buffer, so the policy is
// applied before the point touches the ring.
type NonFinitePolicy int

const (
	// NonFiniteReject (the default) rejects the point with ErrNonFinite.
	NonFiniteReject NonFinitePolicy = iota
	// NonFiniteClamp replaces the point with the last finite point pushed
	// (dropping it when nothing finite has been pushed yet), so gappy
	// telemetry holds its level instead of aborting the batch.
	NonFiniteClamp
	// NonFiniteDrop silently skips the point; stream positions are not
	// consumed by dropped points.
	NonFiniteDrop
)

// Event is one confirmed anomaly: a window of Length points starting at
// stream position Pos (counting from the first point ever pushed) whose
// mean stitched ensemble density is Density. Events are emitted when the
// window-score curve rises back above the threshold after a dip, or at
// Flush; each dip yields exactly one Event, its deepest window.
type Event struct {
	Pos     int
	Length  int
	Density float64
}

// Config parameterizes a streaming detector. Only Window is required;
// zero values select defaults.
type Config struct {
	// Window is the sliding window length n, the scale of the anomalies
	// sought. Required.
	Window int
	// BufLen is the ring buffer capacity: each hop run sees exactly the
	// last BufLen points. Default 10x Window; must be >= 4x Window (the
	// core.DetectChunked minimum chunk length).
	BufLen int
	// Hop is the number of points between ensemble re-inductions.
	// Default BufLen - Window + 1, the DetectChunked stride — the
	// largest hop that still leaves no coverage gaps. Smaller hops
	// lower latency at proportionally higher cost (mitigated by the
	// engine's incremental re-discretization).
	Hop int
	// Threshold is the window-score level at or below which a dip of
	// the stitched curve is reported as an Event, in (0, 1]. The zero
	// value selects the 0.2 default (so an exact-zero threshold is not
	// expressible; use a tiny positive value to report only windows of
	// near-zero density, and set OnEvent to nil to ignore events
	// entirely).
	Threshold float64
	// AdaptiveQuantile, when nonzero, replaces the fixed Threshold by a
	// running quantile of the finalized window scores: a window is
	// anomalous when its score falls at or below the current estimate
	// of this quantile (e.g. 0.05 tracks the lowest 5% of scores seen
	// so far). Must be in (0, 1). The fixed Threshold still applies
	// during the estimator's warm-up — its first max(5, ceil(2/q))
	// scores, enough for the target quantile to carry real support.
	AdaptiveQuantile float64
	// OnEvent, when non-nil, is called synchronously (from Push,
	// PushBatch or Flush) for each confirmed Event, in stream order.
	OnEvent func(Event)

	// NonFinite selects how Push treats NaN/±Inf points: reject (default),
	// clamp to the last finite point, or drop.
	NonFinite NonFinitePolicy

	// RebaseEvery bounds how many hop runs a member's resumable grammar
	// may span before it is rebuilt over the live buffer alone (the
	// engine's induction epoch). 0 selects the adaptive default: per-run
	// induction at the default hop (keeping the DetectChunked identity),
	// amortized-O(hop) induction with bounded history at overlapping
	// hops. K >= 1 rebases every K runs: larger K gives the grammar more
	// cross-hop context and retains proportionally more token history;
	// K = 1 forces from-scratch induction every run.
	RebaseEvery int

	// Ensemble knobs, passed through to the engine; zero values take
	// the paper's defaults (N=50, w,a in [2,10], tau=0.4, topK=3).
	EnsembleSize int
	WMax, AMax   int
	Tau          float64
	TopK         int
	Seed         int64
	Parallelism  int

	// fromScratch disables the engine's incremental re-discretization;
	// the ablation/testing knob behind the incremental==from-scratch
	// property tests.
	fromScratch bool
	// rebuildEachRun forces the engine to rebuild every member's
	// induction state from scratch over its epoch's full token range on
	// every run, on the same rebase schedule — the reference semantics
	// the amortized==rebuilt property tests compare against. It needs
	// the full epoch history, so pipeline trimming is suspended while
	// set; testing only.
	rebuildEachRun bool
}

// Normalized returns the configuration with defaults filled in and the
// streaming knobs validated — the exact settings a detector built from c
// would run with. Serving layers use it to compare two configurations
// for effective equality (for example, a per-stream override request
// against the settings an existing stream already runs with).
func (c Config) Normalized() (Config, error) { return c.normalized() }

// normalized fills in defaults and validates the streaming knobs; the
// ensemble knobs are validated by the engine at construction.
func (c Config) normalized() (Config, error) {
	if c.Window < 2 {
		return c, fmt.Errorf("stream: window must be >= 2, got %d", c.Window)
	}
	if c.BufLen == 0 {
		c.BufLen = DefaultBufFactor * c.Window
	}
	if c.BufLen < 4*c.Window {
		return c, fmt.Errorf("%w: buflen=%d window=%d", ErrBadBufLen, c.BufLen, c.Window)
	}
	if c.Hop == 0 {
		c.Hop = c.BufLen - c.Window + 1
	}
	if c.Hop < 1 || c.Hop > c.BufLen-c.Window+1 {
		return c, fmt.Errorf("%w: hop=%d buflen=%d window=%d", ErrBadHop, c.Hop, c.BufLen, c.Window)
	}
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	if c.Threshold < 0 || c.Threshold > 1 {
		return c, fmt.Errorf("%w: got %v", ErrBadThreshold, c.Threshold)
	}
	if c.AdaptiveQuantile != 0 && (c.AdaptiveQuantile <= 0 || c.AdaptiveQuantile >= 1) {
		return c, fmt.Errorf("%w: got %v", ErrBadQuantile, c.AdaptiveQuantile)
	}
	if c.NonFinite < NonFiniteReject || c.NonFinite > NonFiniteDrop {
		return c, fmt.Errorf("stream: unknown non-finite policy %d", c.NonFinite)
	}
	return c, nil
}

// engineConfig is the engine configuration shared by every hop run (the
// per-run seed is passed per span).
func (c Config) engineConfig() engine.Config {
	return engine.Config{
		Window:         c.Window,
		Size:           c.EnsembleSize,
		WMax:           c.WMax,
		AMax:           c.AMax,
		Tau:            c.Tau,
		TopK:           c.TopK,
		Parallelism:    c.Parallelism,
		RebaseEvery:    c.RebaseEvery,
		FromScratch:    c.fromScratch,
		RebuildEachRun: c.rebuildEachRun,
	}
}

// Detector is a streaming anomaly detector. It is not safe for concurrent
// use; wrap it in a mutex (egi.ConcurrentStream does) or give each
// goroutine its own.
type Detector struct {
	cfg Config

	// Rolling prefix sums over the most recent BufLen points — the only
	// copy of the data the detector keeps.
	ring  *timeseries.RingFeatures
	total int // points pushed since creation

	// The shared detection engine; owns per-member incremental pipelines
	// and pooled scratch across hop runs.
	eng *engine.Engine

	// Hop-run bookkeeping.
	runIdx    int // runs completed; also the per-run seed index
	lastStart int // stream position of the last run's first point
	covered   int // exclusive end of the stitched (covered) region

	// Stitched curve over [pendOff, covered): per-position sums and
	// coverage counts, averaged on demand. Trimmed after every periodic
	// run, so its length never exceeds BufLen + Window - 1.
	pendOff  int
	sum, cnt []float64

	// Event extraction state: window starts below scorePos have final
	// scores; a dip below the threshold is open between runs.
	scorePos int
	inDip    bool
	dipPos   int
	dipMin   float64
	quant    *p2Quantile // running score quantile; nil unless adaptive
	warmup   int         // scores before the adaptive estimate is trusted

	// Last finite point accepted — what NonFiniteClamp substitutes.
	lastVal  float64
	haveLast bool

	// batchScratch materializes the effective values of a mixed
	// finite/non-finite batch under the Clamp/Drop policies, one bulk
	// segment at a time; bounded by one run segment (<= BufLen values).
	batchScratch []float64

	flushed bool
}

// New creates a streaming detector from cfg.
func New(cfg Config) (*Detector, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	// Surface ensemble-knob errors at construction, not first hop.
	eng, err := engine.New(cfg.engineConfig())
	if err != nil {
		return nil, err
	}
	ring, err := timeseries.NewRingFeatures(cfg.BufLen)
	if err != nil {
		return nil, err
	}
	d := &Detector{
		cfg:       cfg,
		ring:      ring,
		eng:       eng,
		lastStart: -1,
	}
	if cfg.AdaptiveQuantile > 0 {
		d.quant = newP2Quantile(cfg.AdaptiveQuantile)
		// Right after its five-sample initialization the P² estimate of a
		// low quantile is still close to the sample median, which would
		// over-fire badly; hold the fixed threshold until the estimator
		// has seen enough scores for the target quantile to have a few
		// expected samples below it.
		d.warmup = int(math.Ceil(2 / cfg.AdaptiveQuantile))
		if d.warmup < 5 {
			d.warmup = 5
		}
	}
	return d, nil
}

// Total returns the number of points pushed so far.
func (d *Detector) Total() int { return d.total }

// Runs returns the number of hop runs completed so far. Replay tooling
// uses it to detect run boundaries while stepping a restored detector
// point by point.
func (d *Detector) Runs() int { return d.runIdx }

// Flushed reports whether Flush has been called.
func (d *Detector) Flushed() bool { return d.flushed }

// MemoryFootprint is the detector's retained-memory accounting in bytes:
// the prefix-sum ring, the engine (member pipelines + pooled scratch), and
// the stitch buffers. Every component is bounded — the ring by BufLen, the
// stitch region by BufLen + Window - 1, the engine by its span length — so
// under sustained pushing the footprint climbs to a plateau and stays
// there; the stream tests pin that bound. Serving layers roll this number
// up across streams to enforce byte budgets.
func (d *Detector) MemoryFootprint() int64 {
	return d.ring.MemoryBytes() +
		d.eng.MemoryFootprint() +
		int64(cap(d.sum)+cap(d.cnt))*8 +
		int64(cap(d.batchScratch))*8
}

// buffered is the number of points currently in the ring.
func (d *Detector) buffered() int { return d.total - d.ring.First() }

// Push appends one point to the stream. Every Hop points (once the buffer
// has filled) it triggers an ensemble re-induction over the buffer, which
// may emit Events through cfg.OnEvent.
func (d *Detector) Push(x float64) error {
	if d.flushed {
		return ErrFlushed
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		switch d.cfg.NonFinite {
		case NonFiniteClamp:
			if !d.haveLast {
				return nil // nothing finite to hold; treat like a drop
			}
			x = d.lastVal
		case NonFiniteDrop:
			return nil
		default:
			return fmt.Errorf("%w: %v at position %d", ErrNonFinite, x, d.total)
		}
	}
	if err := d.ring.Append(x); err != nil {
		return err
	}
	d.lastVal, d.haveLast = x, true
	d.total++
	if d.buffered() == d.cfg.BufLen && d.sinceRun() >= d.cfg.Hop {
		return d.run(d.nextStart(), true)
	}
	return nil
}

// PushBatch pushes the points in order; it stops at the first error.
func (d *Detector) PushBatch(xs []float64) error {
	_, err := d.PushBatchN(xs)
	return err
}

// nonFinite reports whether x is NaN or ±Inf.
func nonFinite(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) }

// PushBatchN pushes the points in order, stopping at the first error, and
// reports how many were consumed — processed without error, including
// points absorbed by the Clamp/Drop non-finite policies. On error the
// count is the index of the offending point: everything before it is
// applied, nothing after it was looked at. Clients use the count to
// resume a partially applied batch without replaying or losing points;
// the durability layer uses it as the write-ahead log coordinate.
//
// PushBatchN is the ingest fast path, not just a loop: the batch's
// non-finite policy is settled in one scan up front, points are
// bulk-appended to the ring between run boundaries (one accounting update
// per segment instead of per point), and hop runs fire at exactly the
// stream positions a per-point Push loop would fire them — events,
// curves, consumed counts and errors are bit-identical either way, a
// property the batch tests pin.
func (d *Detector) PushBatchN(xs []float64) (int, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	if d.flushed {
		return 0, ErrFlushed
	}
	bad := -1
	for i, x := range xs {
		if nonFinite(x) {
			bad = i
			break
		}
	}
	if bad < 0 {
		return d.pushFinite(xs)
	}
	if d.cfg.NonFinite == NonFiniteReject {
		if n, err := d.pushFinite(xs[:bad]); err != nil {
			return n, err
		}
		return bad, fmt.Errorf("%w: %v at position %d", ErrNonFinite, xs[bad], d.total)
	}
	return d.pushPolicyBatch(xs, bad)
}

// untilNextRun is the number of points that must still be appended before
// the hop-run condition (full buffer, a hop of new points) holds — the
// length of the next bulk-append segment.
func (d *Detector) untilNextRun() int {
	n := d.cfg.BufLen - d.buffered()
	if h := d.cfg.Hop - d.sinceRun(); h > n {
		n = h
	}
	if n < 1 {
		n = 1
	}
	return n
}

// pushFinite bulk-appends known-finite points, firing hop runs at exactly
// the stream positions the per-point loop would. On a run error the
// triggering point is reported unconsumed, matching Push.
func (d *Detector) pushFinite(xs []float64) (int, error) {
	i := 0
	for i < len(xs) {
		seg := d.untilNextRun()
		k := len(xs) - i
		atRun := k >= seg
		if atRun {
			k = seg
		}
		if err := d.ring.AppendBatch(xs[i : i+k]); err != nil {
			return i, err
		}
		d.total += k
		d.lastVal, d.haveLast = xs[i+k-1], true
		i += k
		if atRun {
			if err := d.run(d.nextStart(), true); err != nil {
				return i - 1, err
			}
		}
	}
	return len(xs), nil
}

// pushPolicyBatch handles a batch with non-finite points under the
// Clamp/Drop policies: the finite prefix goes straight from xs, then the
// mixed remainder is materialized segment by segment into the batch
// scratch — clamped values substituted, dropped values skipped — and
// bulk-appended like the finite path. bad is the index of the first
// non-finite point.
func (d *Detector) pushPolicyBatch(xs []float64, bad int) (int, error) {
	if n, err := d.pushFinite(xs[:bad]); err != nil {
		return n, err
	}
	consumed := bad
	for consumed < len(xs) {
		seg := d.untilNextRun()
		eff := d.batchScratch[:0]
		raw := consumed
		lastVal, haveLast := d.lastVal, d.haveLast
		for raw < len(xs) && len(eff) < seg {
			x := xs[raw]
			raw++
			if nonFinite(x) {
				if d.cfg.NonFinite != NonFiniteClamp || !haveLast {
					continue // dropped: consumes the raw point, appends nothing
				}
				x = lastVal
			}
			eff = append(eff, x)
			lastVal, haveLast = x, true
		}
		d.batchScratch = eff
		if len(eff) == 0 {
			consumed = raw // a trailing run of dropped points
			continue
		}
		if err := d.ring.AppendBatch(eff); err != nil {
			return consumed, err // unreachable: eff is all finite
		}
		d.total += len(eff)
		d.lastVal, d.haveLast = lastVal, haveLast
		if len(eff) == seg {
			if err := d.run(d.nextStart(), true); err != nil {
				// The run was triggered by the push of raw point raw-1,
				// which the per-point loop reports unconsumed.
				return raw - 1, err
			}
		}
		consumed = raw
	}
	return len(xs), nil
}

// sinceRun is the number of points pushed after the last run (or all of
// them before the first run).
func (d *Detector) sinceRun() int {
	if d.lastStart < 0 {
		return d.total
	}
	return d.total - (d.lastStart + d.cfg.BufLen)
}

// nextStart is the first stream position of the next run's span: the
// DetectChunked chunk grid, anchored at 0.
func (d *Detector) nextStart() int {
	if d.lastStart < 0 {
		return d.total - d.buffered()
	}
	return d.lastStart + d.cfg.Hop
}

// Flush finishes the stream: it runs the ensemble over the still-uncovered
// tail (exactly the final partial chunk DetectChunked would process),
// finalizes every remaining window score, emits any open dip as a last
// Event, and marks the detector flushed. Curve and Anomalies remain
// usable; further pushes return ErrFlushed. Flush is idempotent.
func (d *Detector) Flush() error {
	if d.flushed {
		return nil
	}
	d.flushed = true
	start := d.nextStart()
	if d.total-start >= d.cfg.Window && d.covered < d.total {
		if err := d.run(start, false); err != nil {
			return err
		}
	}
	d.finalizeScores(d.covered)
	if d.inDip {
		d.emit()
	}
	return nil
}

// run re-induces the ensemble over stream span [start, d.total) on the
// shared engine, stitches the resulting curve, finalizes newly-immutable
// window scores, and (for periodic runs) trims the stitched region and the
// engine's token pipelines back to their bounded sizes.
func (d *Detector) run(start int, trim bool) error {
	res, err := d.eng.DetectSpan(d.ring, start, d.total, d.cfg.Seed+int64(d.runIdx)*seedStride)
	if err != nil && err != engine.ErrNoUsableCurves {
		return fmt.Errorf("stream: run %d [%d,%d): %w", d.runIdx, start, d.total, err)
	}

	// Extend the stitched region through d.total and accumulate. A
	// locally-constant span (ErrNoUsableCurves) contributes zero density
	// but full coverage, as in core.DetectChunked.
	for d.pendOff+len(d.sum) < d.total {
		d.sum = append(d.sum, 0)
		d.cnt = append(d.cnt, 0)
	}
	for i := start; i < d.total; i++ {
		if res != nil {
			d.sum[i-d.pendOff] += res.Curve[i-start]
		}
		d.cnt[i-d.pendOff]++
	}
	d.runIdx++
	d.lastStart = start
	d.covered = d.total

	// Positions before this run's start can never be covered again:
	// their stitched values — and the window scores of every window
	// ending at or before start — are final.
	d.finalizeScores(start)
	if trim {
		d.trimTo(start - d.cfg.Window + 1)
		// No future span starts before the next hop position; the
		// engine can drop older tokens. (The rebuild-each-run reference
		// mode re-reads its epoch's full history every run, so trimming
		// is suspended for it.)
		if !d.cfg.rebuildEachRun {
			d.eng.TrimBefore(start + d.cfg.Hop)
		}
	}
	return nil
}

// finalizeScores computes the stitched window scores for every window that
// lies entirely inside [0, end) and has not been scored yet, feeding each
// through the dip state machine.
func (d *Detector) finalizeScores(end int) {
	n := d.cfg.Window
	if end-d.scorePos < n {
		return
	}
	// Sliding mean of the averaged curve over [p, p+n).
	var winSum float64
	for i := d.scorePos; i < d.scorePos+n; i++ {
		winSum += d.avg(i)
	}
	inv := 1 / float64(n)
	for p := d.scorePos; p+n <= end; p++ {
		d.observe(p, winSum*inv)
		if p+n < end {
			winSum += d.avg(p+n) - d.avg(p)
		}
	}
	d.scorePos = end - n + 1
}

// avg is the stitched curve value at stream position p.
func (d *Detector) avg(p int) float64 {
	i := p - d.pendOff
	if d.cnt[i] == 0 {
		return 0
	}
	return d.sum[i] / d.cnt[i]
}

// threshold returns the event threshold in effect for the next finalized
// score: the fixed level, or the running quantile once it has warmed up.
func (d *Detector) threshold() float64 {
	if d.quant != nil && d.quant.Count() >= d.warmup {
		return d.quant.Value()
	}
	return d.cfg.Threshold
}

// observe advances the dip state machine with the final score of window
// start p. A maximal run of scores at or below the threshold is one dip;
// when it closes, its deepest window becomes an Event.
func (d *Detector) observe(p int, score float64) {
	thr := d.threshold()
	if d.quant != nil {
		d.quant.Add(score)
	}
	if score <= thr {
		if !d.inDip || score < d.dipMin {
			d.dipPos, d.dipMin = p, score
		}
		d.inDip = true
		return
	}
	if d.inDip {
		d.emit()
	}
}

func (d *Detector) emit() {
	d.inDip = false
	if d.cfg.OnEvent != nil {
		d.cfg.OnEvent(Event{Pos: d.dipPos, Length: d.cfg.Window, Density: d.dipMin})
	}
}

// trimTo drops stitched-curve entries before stream position p, keeping
// the region bounded by BufLen + Window - 1 entries.
func (d *Detector) trimTo(p int) {
	if p <= d.pendOff {
		return
	}
	k := p - d.pendOff
	if k > len(d.sum) {
		k = len(d.sum)
	}
	d.sum = d.sum[:copy(d.sum, d.sum[k:])]
	d.cnt = d.cnt[:copy(d.cnt, d.cnt[k:])]
	d.pendOff = p
}

// Curve returns the retained stitched ensemble curve and the stream
// position of its first value. The retained region spans at most the ring
// buffer plus the Window-1 points before it; with the default hop it is
// byte-identical to the corresponding suffix of core.DetectChunked's
// stitched curve.
func (d *Detector) Curve() (start int, curve []float64) {
	start = d.total - d.buffered() - (d.cfg.Window - 1)
	if start < d.pendOff {
		start = d.pendOff
	}
	if start >= d.covered {
		return start, nil
	}
	curve = make([]float64, d.covered-start)
	for i := range curve {
		curve[i] = d.avg(start + i)
	}
	return start, curve
}

// Anomalies ranks the top-K anomalies over the retained stitched curve —
// the streaming analogue of Result.Anomalies, scoped to the detector's
// bounded horizon. Event emission is the mechanism for anomalies that have
// scrolled out of this horizon. Before the first run completes it returns
// ErrNotReady.
func (d *Detector) Anomalies() ([]Event, error) {
	start, curve := d.Curve()
	if len(curve) < d.cfg.Window {
		return nil, fmt.Errorf("%w: %d covered, window %d", ErrNotReady, len(curve), d.cfg.Window)
	}
	topK := d.cfg.TopK
	if topK == 0 {
		topK = engine.DefaultTopK
	}
	cands, err := grammar.RankAnomalies(curve, d.cfg.Window, topK)
	if err != nil {
		return nil, err
	}
	out := make([]Event, len(cands))
	for i, c := range cands {
		out[i] = Event{Pos: start + c.Pos, Length: c.Length, Density: c.Density}
	}
	return out, nil
}
