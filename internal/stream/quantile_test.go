package stream

import (
	"math/rand"
	"sort"
	"testing"
)

// TestP2QuantileTracksUniform: on iid samples the P² estimate lands close
// to the exact empirical quantile.
func TestP2QuantileTracksUniform(t *testing.T) {
	for _, q := range []float64{0.05, 0.25, 0.5, 0.9} {
		rng := rand.New(rand.NewSource(int64(q * 1000)))
		est := newP2Quantile(q)
		xs := make([]float64, 0, 5000)
		for i := 0; i < 5000; i++ {
			x := rng.Float64()
			est.Add(x)
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		exact := xs[int(q*float64(len(xs)))]
		if diff := est.Value() - exact; diff > 0.03 || diff < -0.03 {
			t.Errorf("q=%v: estimate %v, exact %v", q, est.Value(), exact)
		}
	}
}

// TestP2QuantileDeterministic: equal inputs, equal estimates — the
// property the adaptive threshold's reproducibility rests on.
func TestP2QuantileDeterministic(t *testing.T) {
	mk := func() []float64 {
		rng := rand.New(rand.NewSource(9))
		est := newP2Quantile(0.1)
		var vals []float64
		for i := 0; i < 500; i++ {
			est.Add(rng.NormFloat64())
			vals = append(vals, est.Value())
		}
		return vals
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("estimates diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestP2QuantileWarmup: before five samples the estimator falls back to
// the small-sample empirical quantile, monotone in its inputs.
func TestP2QuantileWarmup(t *testing.T) {
	est := newP2Quantile(0.5)
	if est.Value() != 0 {
		t.Fatalf("empty estimator value %v", est.Value())
	}
	est.Add(3)
	if est.Count() != 1 || est.Value() != 3 {
		t.Fatalf("after one sample: count %d value %v", est.Count(), est.Value())
	}
	est.Add(1)
	est.Add(2)
	v := est.Value()
	if v < 1 || v > 3 {
		t.Fatalf("3-sample median estimate %v outside [1,3]", v)
	}
}
