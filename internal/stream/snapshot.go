package stream

// This file is the detector's durability face: Snapshot serializes the
// complete resumable state into a versioned, self-describing byte payload,
// and Restore reconstructs a detector that continues bit-identically —
// same stitched curve, same window scores, same events — as if the process
// had never stopped. Every float crosses the boundary as its exact IEEE
// bits (math.Float64bits), and the layers below capture the right state
// for exactness: the ring snapshots its absolute prefix sums (not raw
// points, which would re-accumulate with different rounding), the engine
// snapshots per-member token pipelines verbatim, and induction grammars
// round-trip through their pushed token sequences (a Sequitur grammar is a
// lossless encoding of its input, and induction is deterministic). The
// format embeds a fingerprint of the detection configuration; restoring
// under a different configuration is refused rather than silently
// diverging.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"egi/internal/engine"
	"egi/internal/sax"
	"egi/internal/timeseries"
)

// snapMagic and snapVersion identify the snapshot format. The magic makes
// a foreign file fail fast; the version gates future layout changes.
const (
	snapMagic   = "EGISNAP1"
	snapVersion = 1
)

// Errors reported by Restore.
var (
	// ErrBadSnapshot rejects a payload that is not a well-formed snapshot
	// (wrong magic, truncated, or internally inconsistent).
	ErrBadSnapshot = errors.New("stream: malformed snapshot")
	// ErrSnapshotConfig rejects a well-formed snapshot whose embedded
	// configuration fingerprint differs from the restoring configuration:
	// continuing a stream under different detection parameters would not
	// be the same stream.
	ErrSnapshotConfig = errors.New("stream: snapshot configuration mismatch")
)

// enc is a tiny append-only encoder over one buffer.
type enc struct{ b []byte }

func (e *enc) u64(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) num(v int)     { e.i64(int64(v)) }
func (e *enc) f64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) floats(vs []float64) {
	e.u64(uint64(len(vs)))
	for _, v := range vs {
		e.f64(v)
	}
}

// dec is the matching cursor-based decoder; the first malformed read
// latches err and every later read returns zero values.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrBadSnapshot
	}
}
func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}
func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}
func (d *dec) num() int { return int(d.i64()) }
func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}
func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail()
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}
func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
func (d *dec) floats() []float64 {
	n := d.u64()
	// Divide instead of multiplying: n*8 can wrap uint64 and slip a huge
	// length past the remaining-bytes check into make.
	if d.err != nil || n > uint64(len(d.b)-d.off)/8 {
		d.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

// fingerprint appends the detection-relevant configuration fields — the
// ones that change what the stream computes. Parallelism is excluded
// (results are schedule-independent), as are the test-only ablation knobs.
func (c Config) fingerprint(e *enc) {
	e.num(c.Window)
	e.num(c.BufLen)
	e.num(c.Hop)
	e.f64(c.Threshold)
	e.f64(c.AdaptiveQuantile)
	e.num(c.RebaseEvery)
	e.num(c.EnsembleSize)
	e.num(c.WMax)
	e.num(c.AMax)
	e.f64(c.Tau)
	e.num(c.TopK)
	e.i64(c.Seed)
	e.num(int(c.NonFinite))
}

// Snapshot serializes the detector's complete resumable state. The
// returned payload is deterministic for equal detector states, versioned,
// and consumed by Restore. Snapshotting does not disturb the detector;
// pushing may continue immediately.
func (d *Detector) Snapshot() []byte {
	e := &enc{b: make([]byte, 0, 4096)}
	e.b = append(e.b, snapMagic...)
	e.u64(snapVersion)
	d.cfg.fingerprint(e)

	// Detector scalars.
	e.num(d.total)
	e.num(d.runIdx)
	e.num(d.lastStart)
	e.num(d.covered)
	e.num(d.pendOff)
	e.floats(d.sum)
	e.floats(d.cnt)
	e.num(d.scorePos)
	e.bool(d.inDip)
	e.num(d.dipPos)
	e.f64(d.dipMin)
	e.f64(d.lastVal)
	e.bool(d.haveLast)
	e.bool(d.flushed)

	// Adaptive-threshold estimator (P² markers), when configured.
	e.bool(d.quant != nil)
	if d.quant != nil {
		q := d.quant
		e.f64(q.q)
		e.num(q.n)
		for i := 0; i < 5; i++ {
			e.f64(q.heads[i])
			e.f64(q.pos[i])
			e.f64(q.want[i])
			e.f64(q.inc[i])
			e.f64(q.h[i])
		}
	}

	// Ring: absolute prefix sums over the retained horizon.
	rs := d.ring.State()
	e.num(rs.Cap)
	e.num(rs.Total)
	e.floats(rs.Sum)
	e.floats(rs.Sum2)

	// Engine: member pipelines and resumable induction state.
	es := d.eng.State()
	e.num(es.LastEnd)
	e.u64(uint64(len(es.Pipes)))
	for _, ps := range es.Pipes {
		e.num(ps.Params.W)
		e.num(ps.Params.A)
		e.num(ps.Seq.Next)
		e.str(ps.Seq.Prev)
		e.bool(ps.Seq.Empty)
		e.num(ps.Seq.Trimmed)
		e.u64(uint64(len(ps.Seq.Tokens)))
		for _, t := range ps.Seq.Tokens {
			e.str(t.Word)
			e.num(t.Pos)
		}
	}
	e.u64(uint64(len(es.Induct)))
	for _, is := range es.Induct {
		e.num(is.Params.W)
		e.num(is.Params.A)
		e.num(is.Base)
		e.num(is.FedTo)
		e.num(is.Runs)
		e.u64(uint64(len(is.Pos)))
		for i := range is.Pos {
			e.num(is.Pos[i])
			e.str(is.Words[i])
		}
	}
	return e.b
}

// Restore reconstructs a detector from a Snapshot payload. cfg must carry
// the same detection configuration the snapshot was taken under (verified
// against the embedded fingerprint; ErrSnapshotConfig otherwise) — only
// the non-semantic fields (OnEvent, Parallelism) may differ. The restored
// detector continues the stream bit-identically: pushing the same points
// produces the same curves, scores and events as a detector that never
// stopped.
func Restore(cfg Config, data []byte) (*Detector, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	d := &dec{b: data, off: len(snapMagic)}
	if v := d.u64(); v != snapVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, v)
	}
	want := &enc{}
	cfg.fingerprint(want)
	if d.off+len(want.b) > len(data) || string(data[d.off:d.off+len(want.b)]) != string(want.b) {
		return nil, fmt.Errorf("%w: snapshot was taken under a different detection configuration", ErrSnapshotConfig)
	}
	d.off += len(want.b)

	det := &Detector{cfg: cfg}
	det.total = d.num()
	det.runIdx = d.num()
	det.lastStart = d.num()
	det.covered = d.num()
	det.pendOff = d.num()
	det.sum = d.floats()
	det.cnt = d.floats()
	det.scorePos = d.num()
	det.inDip = d.bool()
	det.dipPos = d.num()
	det.dipMin = d.f64()
	det.lastVal = d.f64()
	det.haveLast = d.bool()
	det.flushed = d.bool()

	if d.bool() {
		q := newP2Quantile(cfg.AdaptiveQuantile)
		q.q = d.f64()
		q.n = d.num()
		for i := 0; i < 5; i++ {
			q.heads[i] = d.f64()
			q.pos[i] = d.f64()
			q.want[i] = d.f64()
			q.inc[i] = d.f64()
			q.h[i] = d.f64()
		}
		det.quant = q
	} else if cfg.AdaptiveQuantile > 0 {
		return nil, fmt.Errorf("%w: adaptive threshold configured but snapshot has no estimator state", ErrSnapshotConfig)
	}
	if cfg.AdaptiveQuantile > 0 {
		det.warmup = int(math.Ceil(2 / cfg.AdaptiveQuantile))
		if det.warmup < 5 {
			det.warmup = 5
		}
	}

	var rs timeseries.RingState
	rs.Cap = d.num()
	rs.Total = d.num()
	rs.Sum = d.floats()
	rs.Sum2 = d.floats()

	var es engine.State
	es.LastEnd = d.num()
	nPipes := d.u64()
	if d.err == nil && nPipes > uint64(len(data)) {
		d.fail()
	}
	for i := uint64(0); i < nPipes && d.err == nil; i++ {
		var ps engine.PipeState
		ps.Params.W = d.num()
		ps.Params.A = d.num()
		ps.Seq.Params = ps.Params
		ps.Seq.Next = d.num()
		ps.Seq.Prev = d.str()
		ps.Seq.Empty = d.bool()
		ps.Seq.Trimmed = d.num()
		nTok := d.u64()
		if d.err != nil || nTok > uint64(len(data)) {
			d.fail()
			break
		}
		ps.Seq.Tokens = make([]sax.Token, 0, nTok)
		for t := uint64(0); t < nTok && d.err == nil; t++ {
			w := d.str()
			p := d.num()
			ps.Seq.Tokens = append(ps.Seq.Tokens, sax.Token{Word: w, Pos: p})
		}
		es.Pipes = append(es.Pipes, ps)
	}
	nInduct := d.u64()
	if d.err == nil && nInduct > uint64(len(data)) {
		d.fail()
	}
	for i := uint64(0); i < nInduct && d.err == nil; i++ {
		var is engine.InductState
		is.Params.W = d.num()
		is.Params.A = d.num()
		is.Base = d.num()
		is.FedTo = d.num()
		is.Runs = d.num()
		nFed := d.u64()
		if d.err != nil || nFed > uint64(len(data)) {
			d.fail()
			break
		}
		is.Pos = make([]int, 0, nFed)
		is.Words = make([]string, 0, nFed)
		for t := uint64(0); t < nFed && d.err == nil; t++ {
			is.Pos = append(is.Pos, d.num())
			is.Words = append(is.Words, d.str())
		}
		es.Induct = append(es.Induct, is)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(data)-d.off)
	}

	// Reject decoded states no real detector run can produce. Each bound
	// protects a later operation: the stitched-region bookkeeping feeds
	// slice indexes and an extend-by-append loop in run, scorePos indexes
	// the stitched curve in finalizeScores, the P² count indexes the
	// initialization heads, and the ring capacity sizes an allocation.
	switch {
	case det.total < 0 || det.runIdx < 0,
		det.pendOff < 0 || det.covered < det.pendOff || det.total < det.covered,
		det.total-det.covered > cfg.BufLen,
		len(det.sum) != len(det.cnt) || len(det.sum) != det.covered-det.pendOff,
		det.scorePos < det.pendOff || det.scorePos > det.covered:
		return nil, fmt.Errorf("%w: inconsistent stitched-curve state", ErrBadSnapshot)
	case det.runIdx == 0 && (det.lastStart != -1 || det.covered != 0),
		det.runIdx > 0 && (det.lastStart < 0 || det.lastStart+cfg.Window > det.covered):
		return nil, fmt.Errorf("%w: inconsistent run bookkeeping", ErrBadSnapshot)
	case det.quant != nil && det.quant.n < 0:
		return nil, fmt.Errorf("%w: negative quantile observation count", ErrBadSnapshot)
	case rs.Cap != cfg.BufLen || rs.Total != det.total:
		return nil, fmt.Errorf("%w: ring state does not match detector state", ErrBadSnapshot)
	}

	ring, err := timeseries.RestoreRing(rs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	eng, err := engine.New(cfg.engineConfig())
	if err != nil {
		return nil, err
	}
	if err := eng.RestoreState(ring, es); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	det.ring = ring
	det.eng = eng
	return det, nil
}
