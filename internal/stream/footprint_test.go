package stream

import (
	"testing"
)

// TestMemoryFootprintPlateaus: under sustained pushing the detector's
// footprint is monotone-bounded — it may only grow while buffers warm up
// to their steady-state capacities, and once the hop schedule has cycled a
// few times it never exceeds the plateau again, no matter how long the
// stream runs. This is the per-stream guarantee the serving layer's byte
// budget is built on.
func TestMemoryFootprintPlateaus(t *testing.T) {
	const (
		period = 40
		bufLen = 8 * period
	)
	// EnsembleSize exceeds the (w,a) grid (3x3 for WMax=AMax=4), so every
	// hop draws every combination and the pipeline map is fully populated
	// from the first run — the plateau then depends only on buffer
	// capacities, not on how long random draws take to visit the grid.
	series := sineSeries(60*bufLen, period, 3)
	d, err := New(Config{Window: period, BufLen: bufLen, EnsembleSize: 16, WMax: 4, AMax: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	if got := d.MemoryFootprint(); got <= 0 {
		t.Fatalf("fresh detector footprint = %d, want > 0", got)
	}

	// Structural bound, independent of stream length: every retained
	// buffer is O(BufLen) — the ring, the stitch region (BufLen+Window-1
	// averaged values), and per (w,a) combination a token pipeline plus a
	// member slot, each holding at most one token/word/curve entry per
	// window of the retained span. The factor 2 covers append's capacity
	// overshoot. If the footprint ever crossed this, some buffer would
	// have to be growing with the stream.
	const gridSize, wMax = 3 * 3, 4
	perEntry := int64(24 + wMax + 16 + 8) // token + word bytes + string header + curve value
	bound := int64((bufLen+1)*2*8) +      // ring
		int64(2*(bufLen+period)*2*8) + // stitch sum+cnt
		2*int64(gridSize)*int64(bufLen)*perEntry + // pipelines + slots
		1<<16 // fixed-size engine scratch

	// Push sixty full buffers, tracking the peak footprint of each half.
	half := len(series) / 2
	var firstPeak, secondPeak int64
	for i, x := range series {
		if err := d.Push(x); err != nil {
			t.Fatal(err)
		}
		got := d.MemoryFootprint()
		if got <= 0 {
			t.Fatalf("footprint %d at point %d, want > 0", got, i)
		}
		if got > bound {
			t.Fatalf("footprint %d at point %d exceeds structural bound %d", got, i, bound)
		}
		if i < half {
			if got > firstPeak {
				firstPeak = got
			}
		} else if got > secondPeak {
			secondPeak = got
		}
	}

	// Plateau: capacities ratchet toward their data-dependent maxima, so
	// the second half may still set small records (a new longest token
	// sequence), but the growth must be marginal — the footprint has
	// converged, not merely stayed under the structural bound.
	if secondPeak > firstPeak+firstPeak/20 {
		t.Fatalf("footprint still growing: first-half peak %d, second-half peak %d", firstPeak, secondPeak)
	}
}

// TestMemoryFootprintPlateausAmortized: the plateau guarantee holds with
// retained induction state at its largest — an overlapping hop schedule
// (amortized epochs spanning several runs) under an explicit rebase
// interval. The resumable builders' arenas, tables and fed-position
// records all ratchet to epoch-bounded capacities; if any of them grew
// with the stream instead, the second-half peak would keep climbing.
func TestMemoryFootprintPlateausAmortized(t *testing.T) {
	const (
		period = 40
		bufLen = 8 * period
		hop    = bufLen / 8 // overlapping spans: epochs really span runs
	)
	series := sineSeries(60*bufLen, period, 7)
	d, err := New(Config{
		Window:       period,
		BufLen:       bufLen,
		Hop:          hop,
		RebaseEvery:  3,
		EnsembleSize: 16,
		WMax:         4,
		AMax:         4,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Structural bound: as in TestMemoryFootprintPlateaus, plus the
	// induction state — per (w,a) combination a resumable grammar over at
	// most the epoch's tokens (bounded by K+1 spans of windows, ~40 bytes
	// of arena node and ~90 bytes of table entries per token at the
	// accounting constants) and the fed-position record (8 bytes per
	// token). The factor 2 covers capacity overshoot and arena-block
	// rounding.
	const gridSize, wMax, rebaseK = 3 * 3, 4, 3
	perEntry := int64(24 + wMax + 16 + 8)
	epochTokens := int64((rebaseK + 1) * bufLen)
	bound := int64((bufLen+1)*2*8) +
		int64(2*(bufLen+period)*2*8) +
		2*int64(gridSize)*int64(bufLen)*perEntry +
		2*int64(gridSize)*epochTokens*(40+90+8) +
		1<<16

	half := len(series) / 2
	var firstPeak, secondPeak int64
	for i, x := range series {
		if err := d.Push(x); err != nil {
			t.Fatal(err)
		}
		got := d.MemoryFootprint()
		if got <= 0 {
			t.Fatalf("footprint %d at point %d, want > 0", got, i)
		}
		if got > bound {
			t.Fatalf("footprint %d at point %d exceeds structural bound %d", got, i, bound)
		}
		if i < half {
			if got > firstPeak {
				firstPeak = got
			}
		} else if got > secondPeak {
			secondPeak = got
		}
	}
	if secondPeak > firstPeak+firstPeak/20 {
		t.Fatalf("footprint still growing: first-half peak %d, second-half peak %d", firstPeak, secondPeak)
	}
}

// TestMemoryFootprintCountsComponents: the roll-up is at least the sum of
// its two precisely-known parts (ring + stitch buffers), the engine
// contribution appears once pipelines exist, and the resumable induction
// state is part of the accounting.
func TestMemoryFootprintCountsComponents(t *testing.T) {
	const period = 30
	d, err := New(Config{Window: period, EnsembleSize: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fresh := d.MemoryFootprint()
	series := sineSeries(25*period, period, 9)
	for _, x := range series {
		if err := d.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	warm := d.MemoryFootprint()
	if warm <= fresh {
		t.Fatalf("footprint did not grow with pipeline state: fresh %d, warm %d", fresh, warm)
	}
	ring := d.ring.MemoryBytes()
	if warm < ring {
		t.Fatalf("footprint %d smaller than its ring component %d", warm, ring)
	}
}
