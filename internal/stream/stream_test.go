package stream

import (
	"math"
	"math/rand"
	"testing"

	"egi/internal/core"
	"egi/internal/timeseries"
)

// sineSeries builds a noisy sine with triangular pulses planted at the
// given positions, each one period long.
func sineSeries(length, period int, seed int64, planted ...int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.1*rng.NormFloat64()
	}
	for _, p := range planted {
		for i := p; i < p+period && i < length; i++ {
			x := float64(i-p) / float64(period)
			s[i] = 1.5 - 3*math.Abs(x-0.5) + 0.1*rng.NormFloat64()
		}
	}
	return s
}

// overlaps reports whether [pos, pos+n) intersects [p, p+n).
func overlaps(pos, p, n int) bool { return pos < p+n && p < pos+n }

// TestSingleRunMatchesDetect: a stream whose buffer never overflows is,
// after Flush, byte-identical to batch core.Detect — same curve, same
// ranked anomalies, same densities.
func TestSingleRunMatchesDetect(t *testing.T) {
	const period = 50
	series := sineSeries(1500, period, 7, 700)

	cfg := Config{Window: period, BufLen: len(series), EnsembleSize: 12, Seed: 42}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range series {
		if err := d.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	batch, err := core.Detect(timeseries.Series(series), core.Config{
		Window: period, Size: 12, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}

	start, curve := d.Curve()
	if start != 0 {
		t.Fatalf("curve start = %d, want 0", start)
	}
	if len(curve) != len(batch.Curve) {
		t.Fatalf("curve length %d, want %d", len(curve), len(batch.Curve))
	}
	for i := range curve {
		if curve[i] != batch.Curve[i] {
			t.Fatalf("curve[%d] = %v, batch %v", i, curve[i], batch.Curve[i])
		}
	}

	got, err := d.Anomalies()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch.Candidates) {
		t.Fatalf("got %d anomalies, batch %d", len(got), len(batch.Candidates))
	}
	for i, g := range got {
		b := batch.Candidates[i]
		if g.Pos != b.Pos || g.Length != b.Length || g.Density != b.Density {
			t.Errorf("anomaly %d: got %+v, batch %+v", i, g, b)
		}
	}
}

// TestDefaultHopMatchesDetectChunked: with the default hop the stitched
// retained curve equals the corresponding suffix of core.DetectChunked's
// curve bit-for-bit, for several stream lengths including exact chunk
// multiples and short tails.
func TestDefaultHopMatchesDetectChunked(t *testing.T) {
	const (
		period = 40
		bufLen = 400
	)
	hop := bufLen - period + 1
	for _, length := range []int{
		bufLen + 3*hop,          // last chunk ends exactly at the stream end
		bufLen + 3*hop + 1,      // 1-point tail (shorter than a window)
		bufLen + 2*hop + hop/2,  // mid-chunk tail
		bufLen + 2*hop + period, // tail exactly one window long
	} {
		series := sineSeries(length, period, 11, 600, length-3*period)
		d, err := New(Config{Window: period, BufLen: bufLen, EnsembleSize: 10, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.PushBatch(series); err != nil {
			t.Fatal(err)
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}

		chunked, err := core.DetectChunked(timeseries.Series(series), core.Config{
			Window: period, Size: 10, Seed: 5,
		}, bufLen)
		if err != nil {
			t.Fatal(err)
		}

		start, curve := d.Curve()
		if start < 0 || start+len(curve) != length {
			t.Fatalf("len=%d: retained [%d, %d), want suffix of [0, %d)",
				length, start, start+len(curve), length)
		}
		for i, v := range curve {
			if v != chunked.Curve[start+i] {
				t.Fatalf("len=%d: curve[%d] = %v, chunked %v", length, start+i, v, chunked.Curve[start+i])
			}
		}
	}
}

// TestEventsFindPlantedAnomalies: anomalies planted mid-stream (and long
// since scrolled out of the buffer) are reported as events, and no burst
// of spurious events drowns them.
func TestEventsFindPlantedAnomalies(t *testing.T) {
	const period = 50
	planted := []int{1300, 4200, 7100}
	series := sineSeries(10000, period, 3, planted...)

	var events []Event
	d, err := New(Config{
		Window:       period,
		BufLen:       600,
		EnsembleSize: 10,
		Seed:         9,
		OnEvent:      func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, p := range planted {
		found := false
		for _, e := range events {
			if overlaps(e.Pos, p, period) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("planted anomaly at %d not covered by any event %v", p, events)
		}
	}
	if len(events) > 3*len(planted) {
		t.Errorf("too many events (%d) for %d planted anomalies: %v", len(events), len(planted), events)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Pos <= events[i-1].Pos {
			t.Errorf("events out of stream order: %v", events)
		}
	}
}

// TestEventsConfirmBeforeFlush: events for anomalies that scrolled far out
// of the buffer arrive during Push, not only at Flush.
func TestEventsConfirmBeforeFlush(t *testing.T) {
	const period = 50
	series := sineSeries(8000, period, 3, 1000)

	var early []Event
	d, err := New(Config{
		Window:       period,
		BufLen:       600,
		EnsembleSize: 10,
		Seed:         9,
		OnEvent:      func(e Event) { early = append(early, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	if len(early) == 0 {
		t.Fatal("no events before Flush")
	}
	if !overlaps(early[0].Pos, 1000, period) {
		t.Errorf("first pre-flush event %+v does not cover the planted anomaly at 1000", early[0])
	}
}

// TestBoundedMemory: the stitched region and ring buffer never exceed
// their documented bounds no matter how long the stream runs.
func TestBoundedMemory(t *testing.T) {
	const (
		period = 20
		bufLen = 100
	)
	d, err := New(Config{Window: period, BufLen: bufLen, EnsembleSize: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50*bufLen; i++ {
		if err := d.Push(math.Sin(float64(i)/7) + 0.2*rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
		if got := len(d.sum); got > bufLen+period-1 {
			t.Fatalf("after %d points the stitched region holds %d entries, bound is %d",
				i+1, got, bufLen+period-1)
		}
		if _, curve := d.Curve(); len(curve) > bufLen+period-1 {
			t.Fatalf("retained curve %d entries, bound is %d", len(curve), bufLen+period-1)
		}
	}
}

// TestSmallHop: a hop much smaller than the buffer re-induces more often
// but still finds the planted anomaly and keeps memory bounded.
func TestSmallHop(t *testing.T) {
	const period = 40
	series := sineSeries(2000, period, 13, 900)
	var events []Event
	d, err := New(Config{
		Window:       period,
		BufLen:       400,
		Hop:          80,
		EnsembleSize: 8,
		Seed:         2,
		OnEvent:      func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range events {
		if overlaps(e.Pos, 900, period) {
			found = true
		}
	}
	if !found {
		t.Errorf("hop=80: planted anomaly at 900 not covered by events %v", events)
	}
	if got := len(d.sum); got > 400+period-1 {
		t.Errorf("stitched region %d entries, bound is %d", got, 400+period-1)
	}
}

// TestPushBatchEqualsPush: batching is just a loop — identical curve and
// events either way.
func TestPushBatchEqualsPush(t *testing.T) {
	const period = 30
	series := sineSeries(1200, period, 21, 500)
	mk := func() (*Detector, *[]Event) {
		var evs []Event
		d, err := New(Config{
			Window: period, BufLen: 150, EnsembleSize: 6, Seed: 3,
			OnEvent: func(e Event) { evs = append(evs, e) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return d, &evs
	}
	a, evA := mk()
	for _, x := range series {
		if err := a.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	b, evB := mk()
	if err := b.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	sa, ca := a.Curve()
	sb, cb := b.Curve()
	if sa != sb || len(ca) != len(cb) {
		t.Fatalf("curve spans differ: [%d,+%d) vs [%d,+%d)", sa, len(ca), sb, len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("curve[%d] differs: %v vs %v", i, ca[i], cb[i])
		}
	}
	if len(*evA) != len(*evB) {
		t.Fatalf("event counts differ: %d vs %d", len(*evA), len(*evB))
	}
	for i := range *evA {
		if (*evA)[i] != (*evB)[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, (*evA)[i], (*evB)[i])
		}
	}
}

// TestDeterministicAcrossRuns: equal seeds give identical events and
// curves across runs and parallelism settings.
func TestDeterministicAcrossRuns(t *testing.T) {
	const period = 30
	series := sineSeries(1500, period, 17, 600)
	run := func(parallelism int) ([]Event, []float64) {
		var evs []Event
		d, err := New(Config{
			Window: period, BufLen: 300, EnsembleSize: 8, Seed: 6,
			Parallelism: parallelism,
			OnEvent:     func(e Event) { evs = append(evs, e) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.PushBatch(series); err != nil {
			t.Fatal(err)
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		_, curve := d.Curve()
		return evs, curve
	}
	ev1, c1 := run(1)
	ev2, c2 := run(8)
	if len(ev1) != len(ev2) {
		t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("curve[%d] differs: %v vs %v", i, c1[i], c2[i])
		}
	}
}

// TestFlushShortStream: a stream shorter than one window cannot produce a
// ranking; one between a window and the buffer length can.
func TestFlushShortStream(t *testing.T) {
	d, err := New(Config{Window: 20, BufLen: 100, EnsembleSize: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Push(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Anomalies(); err == nil {
		t.Error("Anomalies on a sub-window stream should error")
	}

	series := sineSeries(60, 20, 5)
	d2, err := New(Config{Window: 20, BufLen: 100, EnsembleSize: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	if err := d2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Anomalies(); err != nil {
		t.Errorf("Anomalies on a 60-point flushed stream: %v", err)
	}
}

func TestConfigAndInputErrors(t *testing.T) {
	bad := []Config{
		{Window: 1},                              // window too small
		{Window: 50, BufLen: 100},                // buffer < 4x window
		{Window: 10, BufLen: 100, Hop: 92},       // hop > buflen-window+1
		{Window: 10, BufLen: 100, Hop: -1},       // negative hop
		{Window: 10, BufLen: 100, Threshold: 2},  // threshold out of range
		{Window: 10, BufLen: 100, Tau: 1.5},      // ensemble knob out of range
		{Window: 10, BufLen: 100, AMax: 99},      // alphabet beyond sax.MaxAlphabet
		{Window: 10, BufLen: 100, TopK: -1},      // bad topK
		{Window: 10, BufLen: 100, Threshold: -3}, // negative threshold
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}

	d, err := New(Config{Window: 10, BufLen: 100, EnsembleSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Push(math.NaN()); err == nil {
		t.Error("NaN push should error")
	}
	if err := d.Push(math.Inf(1)); err == nil {
		t.Error("Inf push should error")
	}
	if err := d.Push(1.0); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Errorf("second Flush should be a no-op, got %v", err)
	}
	if err := d.Push(2.0); err == nil {
		t.Error("push after Flush should error")
	}
}

// TestConstantStream: a constant stream has no usable curves anywhere;
// runs must not fail, no events fire, and the stitched curve is zero.
func TestConstantStream(t *testing.T) {
	var events []Event
	d, err := New(Config{
		Window: 10, BufLen: 50, EnsembleSize: 4, Seed: 1,
		OnEvent: func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := d.Push(3.25); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	_, curve := d.Curve()
	for i, v := range curve {
		if v != 0 {
			t.Fatalf("constant stream curve[%d] = %v, want 0", i, v)
		}
	}
	// Zero density is "unexplained by any rule": the whole stream is one
	// dip, emitted once at Flush.
	if len(events) != 1 {
		t.Errorf("constant stream emitted %d events, want 1: %v", len(events), events)
	}
}
