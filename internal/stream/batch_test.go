package stream

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// pushSeq is the reference semantics PushBatchN must reproduce exactly:
// the literal per-point loop the batch fast path replaced. On error it
// reports the index of the offending point, with everything before it
// applied and nothing after it looked at.
func pushSeq(d *Detector, xs []float64) (int, error) {
	for i, x := range xs {
		if err := d.Push(x); err != nil {
			return i, err
		}
	}
	return len(xs), nil
}

// injectNonFinite replaces a random sample of positions with NaN/±Inf,
// including occasional leading ones (so Clamp's nothing-finite-yet drop
// path is exercised).
func injectNonFinite(rng *rand.Rand, xs []float64, frac float64) {
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for i := range xs {
		if rng.Float64() < frac {
			xs[i] = specials[rng.Intn(len(specials))]
		}
	}
}

// TestPushBatchNBitIdenticalToPush is the batch==per-point property test:
// across random configurations (window, buffer, hop, non-finite policy,
// adaptive thresholds) and random batch split points — including splits
// that land mid-hop and batches holding non-finite points — PushBatchN
// must be bit-for-bit the per-point loop: same consumed counts, same
// error strings, same events, same stitched curve, and byte-identical
// snapshots at random checkpoints and at the end.
func TestPushBatchNBitIdenticalToPush(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	trials := 24
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		window := 16 + rng.Intn(3)*8
		bufLen := (4 + rng.Intn(5)) * window
		hop := 1 + rng.Intn(bufLen-window+1)
		policy := NonFinitePolicy(rng.Intn(3))
		cfg := Config{
			Window:       window,
			BufLen:       bufLen,
			Hop:          hop,
			EnsembleSize: 4 + rng.Intn(5),
			Seed:         rng.Int63(),
			NonFinite:    policy,
		}
		if rng.Intn(3) == 0 {
			cfg.AdaptiveQuantile = 0.05 + rng.Float64()*0.2
		}
		if rng.Intn(3) == 0 {
			cfg.RebaseEvery = 1 + rng.Intn(4)
		}

		series := sineSeries(3*bufLen+rng.Intn(bufLen), window, rng.Int63(), bufLen+rng.Intn(bufLen))
		switch rng.Intn(3) {
		case 1:
			injectNonFinite(rng, series, 0.02)
		case 2:
			injectNonFinite(rng, series, 0.3) // dense: long non-finite runs
		}

		var evA, evB []Event
		mk := func(sink *[]Event) *Detector {
			c := cfg
			c.OnEvent = func(e Event) { *sink = append(*sink, e) }
			d, err := New(c)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return d
		}
		a := mk(&evA) // per-point reference
		b := mk(&evB) // batch fast path

		for off := 0; off < len(series); {
			n := 1 + rng.Intn(2*bufLen)
			if off+n > len(series) {
				n = len(series) - off
			}
			batch := series[off : off+n]
			na, errA := pushSeq(a, batch)
			nb, errB := b.PushBatchN(batch)
			if na != nb {
				t.Fatalf("trial %d (policy %d, hop %d): batch at %d consumed %d per-point vs %d batched",
					trial, policy, hop, off, na, nb)
			}
			if (errA == nil) != (errB == nil) || (errA != nil && errA.Error() != errB.Error()) {
				t.Fatalf("trial %d: batch at %d: per-point err %v vs batched err %v", trial, off, errA, errB)
			}
			// Like a real client: a rejected point is skipped, the
			// remainder resent as its own batch.
			if errA != nil {
				off += na + 1
			} else {
				off += n
			}
			if rng.Intn(4) == 0 {
				if sa, sb := a.Snapshot(), b.Snapshot(); !bytes.Equal(sa, sb) {
					t.Fatalf("trial %d: snapshots diverge at offset %d (%d vs %d bytes)", trial, off, len(sa), len(sb))
				}
			}
		}

		if a.Total() != b.Total() {
			t.Fatalf("trial %d: totals differ: %d vs %d", trial, a.Total(), b.Total())
		}
		if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
			t.Fatalf("trial %d: final snapshots differ", trial)
		}
		if err := a.Flush(); err != nil {
			t.Fatalf("trial %d: flush per-point: %v", trial, err)
		}
		if err := b.Flush(); err != nil {
			t.Fatalf("trial %d: flush batched: %v", trial, err)
		}
		sa, ca := a.Curve()
		sb, cb := b.Curve()
		if sa != sb || len(ca) != len(cb) {
			t.Fatalf("trial %d: curve spans differ: [%d,+%d) vs [%d,+%d)", trial, sa, len(ca), sb, len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("trial %d: curve[%d] differs: %v vs %v", trial, i, ca[i], cb[i])
			}
		}
		if len(evA) != len(evB) {
			t.Fatalf("trial %d: event counts differ: %d vs %d", trial, len(evA), len(evB))
		}
		for i := range evA {
			if evA[i] != evB[i] {
				t.Fatalf("trial %d: event %d differs: %+v vs %+v", trial, i, evA[i], evB[i])
			}
		}
	}
}

// TestPushBatchNRejectPosition pins the reject error's details: the
// consumed count is the offending index, the error position is the
// stream total at that moment, and the prefix really was applied.
func TestPushBatchNRejectPosition(t *testing.T) {
	d, err := New(Config{Window: 16, BufLen: 64, EnsembleSize: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := []float64{1, 2, 3, math.NaN(), 5}
	n, err := d.PushBatchN(batch)
	if n != 3 || err == nil {
		t.Fatalf("PushBatchN = (%d, %v), want (3, ErrNonFinite)", n, err)
	}
	if d.Total() != 3 {
		t.Fatalf("Total = %d after rejected batch, want 3", d.Total())
	}
	// A second rejected batch reports the new stream position.
	n2, err2 := d.PushBatchN([]float64{math.Inf(1)})
	if n2 != 0 || err2 == nil {
		t.Fatalf("PushBatchN = (%d, %v), want (0, ErrNonFinite)", n2, err2)
	}
	if want := "position 3"; !containsStr(err2.Error(), want) {
		t.Fatalf("error %q does not report %q", err2, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
