package stream

import (
	"math/rand"
	"testing"
)

// TestAmortizedStreamMatchesRebuild is the stream-level amortized-induction
// pin, with the rigor of TestIncrementalStreamMatchesFromScratch: across
// random hop sizes, buffer lengths, ensemble sizes and rebase intervals, a
// detector whose engine appends each hop's new tokens to resumable member
// grammars emits exactly the events — and retains exactly the stitched
// curve — of a detector that rebuilds every member grammar from scratch
// over its epoch's full token range on every run. Bit for bit, adaptive
// and every-K schedules alike.
func TestAmortizedStreamMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		period := 20 + rng.Intn(40)
		bufLen := 4*period + rng.Intn(6*period)
		hop := 1 + rng.Intn(bufLen-period+1)
		size := 4 + rng.Intn(10)
		rebaseEvery := rng.Intn(5)
		length := bufLen + hop*(3+rng.Intn(5)) + rng.Intn(period)
		seed := rng.Int63n(1 << 30)
		series := sineSeries(length, period, seed, length/2)

		cfg := Config{
			Window:       period,
			BufLen:       bufLen,
			Hop:          hop,
			EnsembleSize: size,
			Seed:         seed,
			RebaseEvery:  rebaseEvery,
		}
		rebuild := cfg
		rebuild.rebuildEachRun = true

		evAm, startAm, curveAm := runStream(t, cfg, series)
		evRef, startRef, curveRef := runStream(t, rebuild, series)

		if len(evAm) != len(evRef) {
			t.Fatalf("trial %d (hop=%d buf=%d K=%d): %d events amortized, %d rebuilt",
				trial, hop, bufLen, rebaseEvery, len(evAm), len(evRef))
		}
		for i := range evAm {
			if evAm[i] != evRef[i] {
				t.Fatalf("trial %d event %d: %+v vs %+v", trial, i, evAm[i], evRef[i])
			}
		}
		if startAm != startRef || len(curveAm) != len(curveRef) {
			t.Fatalf("trial %d: curve spans differ: [%d,+%d) vs [%d,+%d)",
				trial, startAm, len(curveAm), startRef, len(curveRef))
		}
		for i := range curveAm {
			if curveAm[i] != curveRef[i] {
				t.Fatalf("trial %d curve[%d]: %v vs %v", trial, i, curveAm[i], curveRef[i])
			}
		}
	}
}

// TestRebaseEveryStreamMatchesFromScratchDiscretization extends the
// engine-seam stream property to explicit rebase intervals: at any K, the
// incremental-discretization detector and the from-scratch one agree
// exactly — induction consumes the same canonical token stream in both
// modes, including across the numerosity seam a reset pipeline introduces
// at zero-overlap hop grids.
func TestRebaseEveryStreamMatchesFromScratchDiscretization(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 6; trial++ {
		period := 20 + rng.Intn(30)
		bufLen := 4*period + rng.Intn(5*period)
		// Include the default (zero-overlap) grid explicitly: it is the
		// seam case where a reset pipeline re-emits a run head.
		hop := 1 + rng.Intn(bufLen-period+1)
		if trial%2 == 0 {
			hop = bufLen - period + 1
		}
		size := 4 + rng.Intn(8)
		rebaseEvery := 1 + rng.Intn(4)
		length := bufLen + hop*(3+rng.Intn(4)) + rng.Intn(period)
		seed := rng.Int63n(1 << 30)
		series := sineSeries(length, period, seed, length/2)

		cfg := Config{
			Window:       period,
			BufLen:       bufLen,
			Hop:          hop,
			EnsembleSize: size,
			Seed:         seed,
			RebaseEvery:  rebaseEvery,
		}
		scratch := cfg
		scratch.fromScratch = true

		evInc, startInc, curveInc := runStream(t, cfg, series)
		evRef, startRef, curveRef := runStream(t, scratch, series)
		if len(evInc) != len(evRef) {
			t.Fatalf("trial %d (hop=%d buf=%d K=%d): %d events incremental, %d from scratch",
				trial, hop, bufLen, rebaseEvery, len(evInc), len(evRef))
		}
		for i := range evInc {
			if evInc[i] != evRef[i] {
				t.Fatalf("trial %d event %d: %+v vs %+v", trial, i, evInc[i], evRef[i])
			}
		}
		if startInc != startRef || len(curveInc) != len(curveRef) {
			t.Fatalf("trial %d: curve spans differ", trial)
		}
		for i := range curveInc {
			if curveInc[i] != curveRef[i] {
				t.Fatalf("trial %d curve[%d]: %v vs %v", trial, i, curveInc[i], curveRef[i])
			}
		}
	}
}
