package stream

import (
	"math/rand"
	"testing"
)

// runStream feeds series through a detector built from cfg and returns the
// emitted events, the retained curve and its start.
func runStream(t *testing.T, cfg Config, series []float64) ([]Event, int, []float64) {
	t.Helper()
	var events []Event
	cfg.OnEvent = func(e Event) { events = append(events, e) }
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	start, curve := d.Curve()
	return events, start, curve
}

// TestIncrementalStreamMatchesFromScratch is the stream-level engine-seam
// property: across random hop sizes, buffer lengths and ensemble sizes,
// a detector whose engine reuses discretization across overlapping hops
// emits exactly the events — and retains exactly the stitched curve — of
// a detector that re-discretizes every span from scratch. Bit for bit.
func TestIncrementalStreamMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 8; trial++ {
		period := 20 + rng.Intn(40)
		bufLen := 4*period + rng.Intn(6*period)
		hop := 1 + rng.Intn(bufLen-period+1)
		size := 4 + rng.Intn(10)
		length := bufLen + hop*(3+rng.Intn(5)) + rng.Intn(period)
		seed := rng.Int63n(1 << 30)
		series := sineSeries(length, period, seed, length/2)

		cfg := Config{
			Window:       period,
			BufLen:       bufLen,
			Hop:          hop,
			EnsembleSize: size,
			Seed:         seed,
		}
		scratch := cfg
		scratch.fromScratch = true

		evInc, startInc, curveInc := runStream(t, cfg, series)
		evRef, startRef, curveRef := runStream(t, scratch, series)

		if len(evInc) != len(evRef) {
			t.Fatalf("trial %d (hop=%d buf=%d): %d events incremental, %d from scratch",
				trial, hop, bufLen, len(evInc), len(evRef))
		}
		for i := range evInc {
			if evInc[i] != evRef[i] {
				t.Fatalf("trial %d event %d: %+v vs %+v", trial, i, evInc[i], evRef[i])
			}
		}
		if startInc != startRef || len(curveInc) != len(curveRef) {
			t.Fatalf("trial %d: curve spans differ: [%d,+%d) vs [%d,+%d)",
				trial, startInc, len(curveInc), startRef, len(curveRef))
		}
		for i := range curveInc {
			if curveInc[i] != curveRef[i] {
				t.Fatalf("trial %d curve[%d]: %v vs %v", trial, i, curveInc[i], curveRef[i])
			}
		}
	}
}

// TestAdaptiveThresholdFindsDriftingAnomalies: on a signal whose baseline
// rule density drifts (amplitude modulation), the adaptive quantile
// threshold still reports the planted anomalies, and the event stream is
// deterministic across runs.
func TestAdaptiveThresholdFindsDriftingAnomalies(t *testing.T) {
	const period = 50
	planted := []int{2300, 5200}
	series := sineSeries(8000, period, 3, planted...)
	// Amplitude drift: scale the second half up threefold, which shifts
	// the score distribution a fixed threshold was tuned for.
	for i := 4000; i < len(series); i++ {
		series[i] *= 3
	}

	cfg := Config{
		Window:           period,
		BufLen:           600,
		EnsembleSize:     10,
		Seed:             9,
		AdaptiveQuantile: 0.05,
	}
	ev1, _, _ := runStream(t, cfg, series)
	ev2, _, _ := runStream(t, cfg, series)
	if len(ev1) != len(ev2) {
		t.Fatalf("adaptive event counts differ across runs: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("adaptive event %d differs across runs: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
	for _, p := range planted {
		found := false
		for _, e := range ev1 {
			if e.Pos < p+period && p < e.Pos+e.Length {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("planted anomaly at %d not covered by adaptive events %v", p, ev1)
		}
	}
	// The quantile keeps the event rate in the same order of magnitude as
	// the quantile itself: no fixed-threshold silence, no event storm.
	if len(ev1) == 0 || len(ev1) > 40 {
		t.Errorf("adaptive threshold emitted %d events", len(ev1))
	}
}

// TestAdaptiveQuantileValidation: out-of-range quantiles are rejected.
func TestAdaptiveQuantileValidation(t *testing.T) {
	for _, q := range []float64{-0.1, 1, 1.5} {
		_, err := New(Config{Window: 20, AdaptiveQuantile: q})
		if err == nil {
			t.Errorf("AdaptiveQuantile=%v should error", q)
		}
	}
	if _, err := New(Config{Window: 20, AdaptiveQuantile: 0.5}); err != nil {
		t.Errorf("AdaptiveQuantile=0.5 rejected: %v", err)
	}
}

// TestSteadyStatePushAllocations pins the pooled hot path: once the stream
// is in steady state, one hop's worth of pushes (including one full
// ensemble re-induction over the buffer) stays under an allocation budget
// that the pre-engine implementation exceeded by more than an order of
// magnitude (it rebuilt features, token sequences, words and curves for
// every member on every hop).
func TestSteadyStatePushAllocations(t *testing.T) {
	const (
		window = 20
		bufLen = 200
		hop    = 20
		size   = 6
	)
	series := sineSeries(4*bufLen, window, 5)
	d, err := New(Config{
		Window:       window,
		BufLen:       bufLen,
		Hop:          hop,
		EnsembleSize: size,
		Seed:         1,
		Parallelism:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	next := len(series)
	avg := testing.AllocsPerRun(40, func() {
		for i := 0; i < hop; i++ {
			if err := d.Push(series[next%len(series)]); err != nil {
				t.Fatal(err)
			}
			next++
		}
	})
	perPush := avg / hop
	t.Logf("steady state: %.1f allocs per hop run, %.2f per pushed point", avg, perPush)
	// One hop run = size members × (sequitur grammar + bookkeeping) plus
	// combine/rank output: ~1340 objects when this bound was set. The
	// pre-engine pipeline measured 3863 on the identical scenario
	// (features, token sequences, words and curves rebuilt per member per
	// hop); the budget sits between the two to catch regressions toward
	// the old profile while leaving headroom for runtime-version noise.
	if avg > 2000 {
		t.Errorf("steady-state hop run allocates %.1f objects, budget 2000", avg)
	}
}
