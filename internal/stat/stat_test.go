package stat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarAndStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Population variance of this classic example is 4.
	if got := PopStd(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("PopStd = %v, want 2", got)
	}
	wantVar := 32.0 / 7.0
	if got := Var(xs); !almostEq(got, wantVar, 1e-12) {
		t.Errorf("Var = %v, want %v", got, wantVar)
	}
	if got := Std(xs); !almostEq(got, math.Sqrt(wantVar), 1e-12) {
		t.Errorf("Std = %v, want %v", got, math.Sqrt(wantVar))
	}
	if got := Var([]float64{3}); got != 0 {
		t.Errorf("Var of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, _, err := MinMax(nil); err == nil {
		t.Fatal("MinMax(nil) should error")
	}
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || min != -1 || max != 7 {
		t.Errorf("MinMax = (%v,%v,%v), want (-1,7,nil)", min, max, err)
	}
}

func TestMedian(t *testing.T) {
	if _, err := Median(nil); err == nil {
		t.Fatal("Median(nil) should error")
	}
	odd := []float64{9, 1, 5}
	m, err := Median(odd)
	if err != nil || m != 5 {
		t.Errorf("Median(odd) = %v, want 5", m)
	}
	// Median must not reorder its input.
	if odd[0] != 9 || odd[1] != 1 || odd[2] != 5 {
		t.Errorf("Median modified its input: %v", odd)
	}
	even := []float64{4, 1, 3, 2}
	m, _ = Median(even)
	if m != 2.5 {
		t.Errorf("Median(even) = %v, want 2.5", m)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	for _, c := range []struct{ q, want float64 }{
		{0, 0}, {1, 4}, {0.5, 2}, {0.25, 1}, {0.125, 0.5},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil || !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("Quantile(-0.1) should error")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("Quantile(1.1) should error")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(empty) should error")
	}
}

func TestArgSort(t *testing.T) {
	xs := []float64{0.3, 0.9, 0.1, 0.9}
	desc := ArgSortDesc(xs)
	want := []int{1, 3, 0, 2} // stable: the first 0.9 comes first
	for i := range want {
		if desc[i] != want[i] {
			t.Fatalf("ArgSortDesc = %v, want %v", desc, want)
		}
	}
	asc := ArgSortAsc(xs)
	wantAsc := []int{2, 0, 1, 3}
	for i := range wantAsc {
		if asc[i] != wantAsc[i] {
			t.Fatalf("ArgSortAsc = %v, want %v", asc, wantAsc)
		}
	}
}

func TestArgSortPropertySorted(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) {
				xs[i] = 0
			}
		}
		idx := ArgSortDesc(xs)
		if len(idx) != len(xs) {
			return false
		}
		seen := make(map[int]bool, len(idx))
		for i := 1; i < len(idx); i++ {
			if xs[idx[i-1]] < xs[idx[i]] {
				return false
			}
		}
		for _, i := range idx {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZNormalize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z := ZNormalize(xs, 1e-9)
	if !almostEq(Mean(z), 0, 1e-12) {
		t.Errorf("mean after znorm = %v", Mean(z))
	}
	if !almostEq(PopStd(z), 1, 1e-12) {
		t.Errorf("popstd after znorm = %v", PopStd(z))
	}
	// Constant input maps to zeros, not NaNs.
	flat := ZNormalize([]float64{7, 7, 7}, 1e-9)
	for _, v := range flat {
		if v != 0 {
			t.Errorf("constant znorm = %v, want zeros", flat)
		}
	}
}

func TestZNormalizeIntoMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	ZNormalizeInto(make([]float64, 2), make([]float64, 3), 1e-9)
}

func TestZNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		z := ZNormalize(xs, 1e-9)
		if PopStd(xs) < 1e-9 {
			for _, v := range z {
				if v != 0 {
					return false
				}
			}
			return true
		}
		return almostEq(Mean(z), 0, 1e-6) && almostEq(PopStd(z), 1, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGaussianBreakpoints(t *testing.T) {
	if _, err := GaussianBreakpoints(1); err == nil {
		t.Fatal("a=1 should error")
	}
	// Classic SAX table values (Lin et al. 2007).
	want := map[int][]float64{
		2: {0},
		3: {-0.43, 0.43},
		4: {-0.67, 0, 0.67},
		5: {-0.84, -0.25, 0.25, 0.84},
	}
	for a, bps := range want {
		got, err := GaussianBreakpoints(a)
		if err != nil {
			t.Fatalf("a=%d: %v", a, err)
		}
		if len(got) != a-1 {
			t.Fatalf("a=%d: %d breakpoints, want %d", a, len(got), a-1)
		}
		for i := range bps {
			if !almostEq(got[i], bps[i], 0.005) {
				t.Errorf("a=%d breakpoint %d = %v, want %v", a, i, got[i], bps[i])
			}
		}
	}
}

func TestGaussianBreakpointsProperties(t *testing.T) {
	for a := 2; a <= 30; a++ {
		bps, err := GaussianBreakpoints(a)
		if err != nil {
			t.Fatal(err)
		}
		if !sort.Float64sAreSorted(bps) {
			t.Fatalf("a=%d: breakpoints not sorted: %v", a, bps)
		}
		// Symmetry of the standard normal: bps[i] == -bps[a-2-i].
		for i := range bps {
			if !almostEq(bps[i], -bps[len(bps)-1-i], 1e-9) {
				t.Fatalf("a=%d: breakpoints not symmetric: %v", a, bps)
			}
		}
	}
}

func TestNormalizeByMax(t *testing.T) {
	xs := []float64{0, 2, 4}
	got := NormalizeByMax(xs)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("NormalizeByMax = %v, want %v", got, want)
		}
	}
	// Zeros stay exactly zero.
	if got[0] != 0 {
		t.Error("zero not preserved")
	}
	// All-zero curve unchanged.
	z := NormalizeByMax([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("all-zero curve changed: %v", z)
	}
	// Input not modified.
	if xs[1] != 2 {
		t.Error("input modified")
	}
}

func TestMinMaxNormalize(t *testing.T) {
	got := MinMaxNormalize([]float64{1, 2, 3})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("MinMaxNormalize = %v, want %v", got, want)
		}
	}
	flat := MinMaxNormalize([]float64{4, 4})
	if flat[0] != 0 || flat[1] != 0 {
		t.Errorf("constant minmax = %v, want zeros", flat)
	}
	// The property the paper cares about: min-max moves a nonzero minimum to
	// zero, i.e. it does NOT preserve the meaning of zero density.
	shifted := MinMaxNormalize([]float64{1, 2})
	if shifted[0] != 0 {
		t.Errorf("expected min-max to map min to 0, got %v", shifted)
	}
}

func TestColumnMedians(t *testing.T) {
	rows := [][]float64{
		{1, 10, 0},
		{2, 20, 5},
		{3, 30, 100},
	}
	got, err := ColumnMedians(rows)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 20, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ColumnMedians = %v, want %v", got, want)
		}
	}
	if _, err := ColumnMedians(nil); err == nil {
		t.Error("empty rows should error")
	}
	if _, err := ColumnMedians([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestColumnMeans(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}}
	got, err := ColumnMeans(rows)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 3 {
		t.Fatalf("ColumnMeans = %v, want [2 3]", got)
	}
	if _, err := ColumnMeans(nil); err == nil {
		t.Error("empty rows should error")
	}
	if _, err := ColumnMeans([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestColumnMediansProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		nRows := 1 + rng.Intn(9)
		width := 1 + rng.Intn(20)
		rows := make([][]float64, nRows)
		for r := range rows {
			rows[r] = make([]float64, width)
			for c := range rows[r] {
				rows[r][c] = rng.NormFloat64()
			}
		}
		med, err := ColumnMedians(rows)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < width; c++ {
			col := make([]float64, nRows)
			for r := range rows {
				col[r] = rows[r][c]
			}
			want, _ := Median(col)
			if !almostEq(med[c], want, 1e-12) {
				t.Fatalf("column %d median = %v, want %v", c, med[c], want)
			}
		}
	}
}
