// Package stat provides the small numerical and order-statistics helpers
// shared by the rest of the library: moments, medians, quantiles, argsort,
// and the equiprobable Gaussian breakpoints used by SAX discretization.
//
// All functions are pure and allocate only when they must return a new
// slice; callers on hot paths can use the *Into variants to reuse buffers.
package stat

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one observation.
var ErrEmpty = errors.New("stat: empty input")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Var returns the unbiased (n-1 denominator) sample variance of xs.
// It returns 0 when xs has fewer than two elements.
func Var(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 {
	return math.Sqrt(Var(xs))
}

// PopStd returns the population (n denominator) standard deviation of xs.
// SAX z-normalization conventionally uses the population form.
func PopStd(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// MinMax returns the minimum and maximum of xs.
// It returns an error for an empty slice.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Max returns the maximum of xs, or negative infinity for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or positive infinity for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying it.
// It returns an error for an empty slice.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	tmp := append([]float64(nil), xs...)
	return medianInPlace(tmp), nil
}

// MedianInPlace returns the median of xs, reordering xs as a side effect.
// It returns an error for an empty slice.
func MedianInPlace(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return medianInPlace(xs), nil
}

func medianInPlace(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns an error for an empty
// slice or q outside [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stat: quantile out of range")
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	pos := q * float64(len(tmp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo], nil
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac, nil
}

// ArgSortDesc returns the indices of xs ordered so that
// xs[idx[0]] >= xs[idx[1]] >= ... The sort is stable, so ties keep their
// original relative order (this mirrors Algorithm 1's ArgSort over curve
// standard deviations).
func ArgSortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}

// ArgSortAsc returns the indices of xs ordered so that
// xs[idx[0]] <= xs[idx[1]] <= ... The sort is stable.
func ArgSortAsc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

// ZNormalize returns a z-normalized copy of xs: mean 0 and population
// standard deviation 1. When the standard deviation is below eps the
// subsequence is (numerically) constant and the function returns all zeros,
// the convention used by SAX and matrix profile implementations to avoid
// amplifying noise on flat segments.
func ZNormalize(xs []float64, eps float64) []float64 {
	out := make([]float64, len(xs))
	ZNormalizeInto(out, xs, eps)
	return out
}

// ZNormalizeInto writes the z-normalized xs into dst, which must have the
// same length as xs. See ZNormalize for the constant-subsequence convention.
func ZNormalizeInto(dst, xs []float64, eps float64) {
	if len(dst) != len(xs) {
		panic("stat: ZNormalizeInto length mismatch")
	}
	m := Mean(xs)
	sd := PopStd(xs)
	if sd < eps {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i, x := range xs {
		dst[i] = (x - m) / sd
	}
}

// GaussianBreakpoints returns the a-1 breakpoints that divide the standard
// normal distribution into a equiprobable regions, as used by the SAX
// breakpoint table (Lin et al. 2007). For a < 2 it returns an error: an
// alphabet needs at least two symbols to carry information.
func GaussianBreakpoints(a int) ([]float64, error) {
	if a < 2 {
		return nil, errors.New("stat: alphabet size must be >= 2")
	}
	bps := make([]float64, a-1)
	for i := 1; i < a; i++ {
		p := float64(i) / float64(a)
		bps[i-1] = math.Sqrt2 * math.Erfinv(2*p-1)
	}
	return bps, nil
}

// NormalizeByMax divides every element of xs by max(xs) so that the result
// lies in [0, 1] while zeros stay exactly zero — the normalization Algorithm
// 1 uses instead of min-max scaling, to preserve the significance of
// zero-density locations. If the maximum is not positive the input is
// returned unchanged (as a copy): such a curve carries no signal.
func NormalizeByMax(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	NormalizeByMaxInPlace(out)
	return out
}

// NormalizeByMaxInPlace is NormalizeByMax operating on xs directly.
func NormalizeByMaxInPlace(xs []float64) {
	m := Max(xs)
	if m <= 0 || math.IsInf(m, -1) {
		return
	}
	for i := range xs {
		xs[i] /= m
	}
}

// MinMaxNormalize rescales xs to [0, 1] using (x-min)/(max-min). It exists
// for the ablation comparison against NormalizeByMax; the paper argues this
// variant destroys the significance of zero-density points. A constant
// input maps to all zeros.
func MinMaxNormalize(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	MinMaxNormalizeInPlace(out)
	return out
}

// MinMaxNormalizeInPlace is MinMaxNormalize operating on xs directly.
func MinMaxNormalizeInPlace(xs []float64) {
	min, max, err := MinMax(xs)
	if err != nil || max == min {
		for i := range xs {
			xs[i] = 0
		}
		return
	}
	for i := range xs {
		xs[i] = (xs[i] - min) / (max - min)
	}
}

// ColumnMedians returns, for a set of equal-length rows, the per-column
// median. It is the combiner at the heart of Algorithm 1 (line 14). It
// returns an error when rows is empty or the rows have unequal lengths.
func ColumnMedians(rows [][]float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	width := len(rows[0])
	for _, r := range rows[1:] {
		if len(r) != width {
			return nil, errors.New("stat: rows have unequal lengths")
		}
	}
	out := make([]float64, width)
	buf := make([]float64, len(rows))
	for c := 0; c < width; c++ {
		for r := range rows {
			buf[r] = rows[r][c]
		}
		out[c] = medianInPlace(buf)
	}
	return out, nil
}

// ColumnMeans returns the per-column mean of a set of equal-length rows.
// It is the alternative combiner used by the ablation benchmarks.
func ColumnMeans(rows [][]float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	width := len(rows[0])
	for _, r := range rows[1:] {
		if len(r) != width {
			return nil, errors.New("stat: rows have unequal lengths")
		}
	}
	out := make([]float64, width)
	for _, r := range rows {
		for c, v := range r {
			out[c] += v
		}
	}
	inv := 1 / float64(len(rows))
	for c := range out {
		out[c] *= inv
	}
	return out, nil
}
