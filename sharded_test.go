package egi_test

import (
	"errors"
	"fmt"
	"testing"

	"egi"
)

// TestShardedManagerPublicAPI: the sharded constructor serves the exact
// Manager API — streams spread across shards, listings stay sorted, and
// the admin surface (Resize, Drain, RouterStats) works end to end.
func TestShardedManagerPublicAPI(t *testing.T) {
	opts := egi.StreamOptions{Window: 50, BufLen: 400, EnsembleSize: 8, Seed: 21}
	m, err := egi.NewShardedManager(3, egi.ManagerOptions{Stream: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	series := synthetic(600, 50, 0, 77)
	// Ingest in reverse id order; the listing must come back sorted.
	for i := 11; i >= 0; i-- {
		if err := m.PushBatch(fmt.Sprintf("s%02d", i), series); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if len(st.Streams) != 12 {
		t.Fatalf("%d streams, want 12", len(st.Streams))
	}
	shards := map[string]int{}
	for i, s := range st.Streams {
		if i > 0 && st.Streams[i-1].ID >= s.ID {
			t.Fatalf("listing out of order: %q before %q", st.Streams[i-1].ID, s.ID)
		}
		if s.Shard == "" {
			t.Fatalf("stream %q has no shard label", s.ID)
		}
		shards[s.Shard]++
	}
	if len(shards) < 2 {
		t.Fatalf("all 12 streams on one shard: %v", shards)
	}

	rs, err := m.RouterStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Shards) != 3 {
		t.Fatalf("%d shards, want 3", len(rs.Shards))
	}
	total := 0
	for _, s := range rs.Shards {
		total += s.Streams
	}
	if total != 12 {
		t.Fatalf("shard stream counts sum to %d, want 12", total)
	}

	// Drain the busiest shard: everything must survive elsewhere.
	busiest, most := "", -1
	for name, n := range shards {
		if n > most {
			busiest, most = name, n
		}
	}
	if err := m.Drain(busiest); err != nil {
		t.Fatal(err)
	}
	for _, s := range m.Stats().Streams {
		if s.Shard == busiest {
			t.Fatalf("stream %q still on drained shard %q", s.ID, busiest)
		}
		if s.Points != 600 {
			t.Fatalf("stream %q has %d points after drain, want 600", s.ID, s.Points)
		}
	}
	rs, err = m.RouterStats()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Migrations < int64(most) || rs.MigrationFailures != 0 {
		t.Fatalf("migrations=%d (want >= %d) failures=%d", rs.Migrations, most, rs.MigrationFailures)
	}

	// Shrink away the drained shard; serving continues on two.
	if err := m.Resize(2); err != nil {
		t.Fatal(err)
	}
	if rs, _ = m.RouterStats(); len(rs.Shards) != 2 {
		t.Fatalf("%d shards after shrink, want 2", len(rs.Shards))
	}
	if err := m.PushBatch("s00", series); err != nil {
		t.Fatal(err)
	}
}

// TestShardedAdminNotSharded: the admin surface refuses plain managers
// (and a 1-shard "sharded" manager, which collapses to one) with
// ErrNotSharded rather than pretending a router exists.
func TestShardedAdminNotSharded(t *testing.T) {
	opts := egi.StreamOptions{Window: 50, BufLen: 400, EnsembleSize: 8, Seed: 21}
	for name, mk := range map[string]func() (*egi.Manager, error){
		"plain":   func() (*egi.Manager, error) { return egi.NewManager(egi.ManagerOptions{Stream: opts}) },
		"1-shard": func() (*egi.Manager, error) { return egi.NewShardedManager(1, egi.ManagerOptions{Stream: opts}) },
	} {
		m, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Resize(2); !errors.Is(err, egi.ErrNotSharded) {
			t.Fatalf("%s Resize: err = %v, want ErrNotSharded", name, err)
		}
		if err := m.Drain("shard-000"); !errors.Is(err, egi.ErrNotSharded) {
			t.Fatalf("%s Drain: err = %v, want ErrNotSharded", name, err)
		}
		if _, err := m.RouterStats(); !errors.Is(err, egi.ErrNotSharded) {
			t.Fatalf("%s RouterStats: err = %v, want ErrNotSharded", name, err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Zero and negative shard counts are constructor errors.
	if _, err := egi.NewShardedManager(0, egi.ManagerOptions{Stream: opts}); err == nil {
		t.Fatal("NewShardedManager(0) succeeded")
	}
}
