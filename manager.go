package egi

import (
	"errors"
	"sync"
	"time"

	"egi/internal/host"
	"egi/internal/manager"
	"egi/internal/router"
	"egi/internal/stream"
)

// ManagerOptions configures NewManager. Only Stream.Window is required;
// zero values select defaults (unlimited streams and bytes, no automatic
// eviction).
type ManagerOptions struct {
	// Stream is the StreamOptions template every managed stream is
	// created with. Its OnAnomaly must be nil: the manager owns event
	// delivery — subscribe with Manager.Subscribe instead.
	Stream StreamOptions
	// MaxStreams caps the number of live streams; 0 means unlimited. At
	// the cap, opening another stream evicts the least-recently-pushed
	// stream idle for at least IdleAfter, or fails with an error
	// wrapping ErrTooManyStreams if none is.
	MaxStreams int
	// MaxBytes caps the total MemoryFootprint across streams, in bytes;
	// 0 means unlimited. New streams are admitted against the budget
	// atomically; growth of existing streams is checked before each
	// push. Either way the manager evicts idle streams first and fails
	// with an error wrapping ErrOverBudget only if that does not make
	// room. Because each stream's footprint is individually bounded,
	// the total can transiently overshoot the budget by at most one
	// hop's growth per concurrently pushing stream.
	MaxBytes int64
	// IdleAfter is how long a stream must go without a push before the
	// manager may evict it (LRU first). Zero disables automatic
	// eviction: streams then leave only through CloseStream or Close,
	// and the limits above reject instead of evicting.
	IdleAfter time.Duration
	// DataDir, when non-empty, makes every stream durable: accepted
	// points are write-ahead logged under this directory with periodic
	// snapshot checkpoints, eviction hibernates streams (resumable on
	// the next push) instead of flushing them, and NewManager recovers
	// every persisted stream — each continues bit-identically to a
	// stream that never stopped. Empty keeps the manager in-memory.
	DataDir string
	// SnapshotEvery is the number of accepted points between snapshot
	// checkpoints of each durable stream; 0 selects 8192. Checkpoints
	// bound recovery replay time and on-disk log size.
	SnapshotEvery int
	// Fsync, when set, fsyncs the write-ahead log after every accepted
	// push batch: acked points then survive power loss, not just process
	// death, at the cost of one fsync per batch.
	Fsync bool
}

// Errors reported by Manager, re-exported from the serving core so callers
// can match them with errors.Is.
var (
	// ErrManagerClosed is returned by every Manager operation after Close.
	ErrManagerClosed = manager.ErrManagerClosed
	// ErrTooManyStreams rejects opening a stream at the MaxStreams cap
	// when no idle stream can be evicted.
	ErrTooManyStreams = manager.ErrTooManyStreams
	// ErrOverBudget rejects a push while the rolled-up memory footprint
	// exceeds MaxBytes and no idle stream can be evicted.
	ErrOverBudget = manager.ErrOverBudget
	// ErrUnknownStream is returned for operations on ids that do not
	// exist (and have not been implicitly created).
	ErrUnknownStream = manager.ErrUnknownStream
	// ErrStreamQuarantined rejects operations on a stream whose detection
	// engine panicked or whose persisted state could not be recovered.
	// The stream is held as a tombstone — memory released, on-disk state
	// preserved for inspection — so one poisoned stream never takes down
	// the process. CloseStream deletes it; a restart retries recovery.
	ErrStreamQuarantined = manager.ErrStreamQuarantined
	// ErrStreamConfig rejects OpenWith on a stream that already exists
	// with different effective settings. The existing stream is left
	// untouched; close it first if the new settings are intended.
	ErrStreamConfig = manager.ErrStreamConfig
)

// ErrManagerCallback is returned by NewManager when the stream template
// sets OnAnomaly: a Manager owns event delivery, so events arrive through
// Manager.Subscribe instead of a callback.
var ErrManagerCallback = errors.New("egi: Manager delivers events via Subscribe; Stream.OnAnomaly must be nil")

// StreamEvent is one event from a managed stream, tagged with the id of
// the stream that produced it: a confirmed anomaly or — when Health is
// non-empty — a health transition. Anomaly.Pos counts from the first
// point pushed to that stream.
type StreamEvent struct {
	// Stream is the id of the stream the event belongs to.
	Stream string
	// Anomaly is the confirmed anomaly; like Streamer events it never
	// changes once delivered. Meaningless when Health is set.
	Anomaly Anomaly
	// Health, when non-empty, marks this as a health transition instead
	// of an anomaly: HealthDegraded (durability failing, stream detecting
	// in memory while the manager retries with backoff), HealthHealed (a
	// checkpoint succeeded, fully durable again), or HealthQuarantined
	// (engine panic — the stream is now a tombstone).
	Health string
	// Cause carries the failure text behind a degraded or quarantined
	// transition.
	Cause string
}

// Health transition values carried by StreamEvent.Health, re-exported
// from the serving core.
const (
	// HealthDegraded marks the transition into degraded (memory-only)
	// operation after a durability failure.
	HealthDegraded = manager.HealthDegraded
	// HealthHealed marks the return to full durability after a
	// successful checkpoint.
	HealthHealed = manager.HealthHealed
	// HealthQuarantined marks a stream tombstoned by a panic or an
	// unrecoverable persisted state.
	HealthQuarantined = manager.HealthQuarantined
)

// StreamStats is a point-in-time snapshot of one managed stream's
// accounting.
type StreamStats struct {
	// ID is the stream's key.
	ID string
	// Points is the number of points accepted so far.
	Points int64
	// Events is the number of confirmed anomaly events emitted so far.
	Events int64
	// MemoryBytes is the stream's current MemoryFootprint.
	MemoryBytes int64
	// Created is when the stream was opened.
	Created time.Time
	// LastPush is when the stream last accepted a push (Created until
	// the first push).
	LastPush time.Time
	// Degraded reports that the stream's durability is failing: it keeps
	// detecting and accepting pushes in memory while the manager retries
	// logging with capped backoff and heals by checkpoint once writes
	// succeed. Points accepted while degraded are lost if the process
	// dies before healing — monitor this flag.
	Degraded bool
	// Quarantined reports a tombstoned stream (engine panic or
	// unrecoverable persisted state): pushes are rejected with
	// ErrStreamQuarantined until it is closed or the process restarts.
	Quarantined bool
	// Fault is the failure text behind Degraded or Quarantined; empty on
	// a healthy stream.
	Fault string
	// Shard names the serving shard hosting the stream on a sharded
	// manager (NewShardedManager); empty on a single-shard Manager.
	Shard string
}

// ManagerStats is a point-in-time snapshot of a whole Manager.
type ManagerStats struct {
	// Streams holds one snapshot per live stream, sorted by id.
	Streams []StreamStats
	// TotalBytes is the rolled-up MemoryFootprint across live streams.
	TotalBytes int64
	// Evicted counts streams evicted for idleness or budget since the
	// manager was created (explicit CloseStream calls not included).
	Evicted int64
	// Degraded counts live streams currently in degraded (memory-only)
	// mode.
	Degraded int64
	// Quarantined counts quarantined tombstone streams.
	Quarantined int64
}

// Manager multiplexes many independent streaming detectors behind one
// surface, keyed by stream id — the serving layer of the library, and what
// cmd/egiserve exposes over HTTP. Streams are created implicitly on first
// push (or explicitly with Open), each behind its own lock, so producers
// for different streams never contend and producers for one stream
// serialize exactly like ConcurrentStream. Memory is governed end to end:
// every stream's MemoryFootprint (ring + member pipelines + resumable
// grammars + stitch buffers, all bounded) is rolled up after each push,
// and the MaxStreams / MaxBytes limits combined with LRU idle eviction
// keep the total inside a configured envelope — limits reject cleanly,
// they never corrupt a stream.
//
//	m, err := egi.NewManager(egi.ManagerOptions{
//		Stream:     egi.StreamOptions{Window: 100},
//		MaxStreams: 10000,
//		MaxBytes:   1 << 30,
//		IdleAfter:  10 * time.Minute,
//	})
//	events, cancel := m.Subscribe("", 256) // all streams
//	go func() {
//		for ev := range events {
//			log.Printf("%s: anomaly at %d", ev.Stream, ev.Anomaly.Pos)
//		}
//	}()
//	...
//	m.PushBatch("sensor-42", points) // creates the stream on first use
//	...
//	m.Close() // flushes every stream, then closes subscriber channels
//
// All methods are safe for concurrent use.
type Manager struct {
	h host.StreamHost
	// r and b are set only on a sharded manager (NewShardedManager): the
	// routing tier behind h, and the shared event broker the Manager owns
	// and closes after the shards.
	r *router.Router
	b *manager.Broker
}

// NewManager creates a stream manager. The stream template is validated
// here, so a bad configuration fails at construction rather than on the
// first push.
func NewManager(opts ManagerOptions) (*Manager, error) {
	if opts.Stream.OnAnomaly != nil {
		return nil, ErrManagerCallback
	}
	cfg := manager.Config{
		Stream:        opts.Stream.config(),
		MaxStreams:    opts.MaxStreams,
		MaxBytes:      opts.MaxBytes,
		IdleAfter:     opts.IdleAfter,
		DataDir:       opts.DataDir,
		SnapshotEvery: opts.SnapshotEvery,
		Fsync:         opts.Fsync,
	}
	m, err := manager.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Manager{h: m}, nil
}

// StreamOverrides pins per-stream detector settings at create time,
// overriding the manager's stream template for that one stream. Zero
// fields inherit the template; set fields must be valid on their own
// terms (the same validation as StreamOptions). The pinned effective
// settings travel with the stream — they survive hibernation, restarts,
// and shard migration.
type StreamOverrides struct {
	// Window overrides the sliding window length (anomaly scale).
	Window int
	// BufLen overrides the ring buffer capacity.
	BufLen int
	// Hop overrides the points between detection runs.
	Hop int
	// Threshold overrides the fixed event threshold in (0, 1].
	Threshold float64
	// RebaseEvery overrides the grammar rebase schedule (K runs; 0
	// inherits the template).
	RebaseEvery int
}

// OpenWith is Open with per-stream setting overrides. Opening an
// existing stream with the same effective settings is an idempotent
// no-op; opening one whose settings differ fails with an error wrapping
// ErrStreamConfig and leaves the stream untouched.
func (m *Manager) OpenWith(id string, ov StreamOverrides) error {
	return m.h.OpenStream(id, manager.Overrides{
		Window:      ov.Window,
		BufLen:      ov.BufLen,
		Hop:         ov.Hop,
		Threshold:   ov.Threshold,
		RebaseEvery: ov.RebaseEvery,
	})
}

// Open creates the stream if it does not exist yet, applying the
// MaxStreams limit (evicting an idle stream if necessary). It is
// idempotent: opening an existing stream is a no-op.
func (m *Manager) Open(id string) error { return m.h.Open(id) }

// Push appends one point to the stream, creating it on first use.
func (m *Manager) Push(id string, x float64) error { return m.h.Push(id, x) }

// PushBatch appends the points, in order, to the stream, creating it on
// first use; no other producer's points interleave with the batch. Limit
// errors (ErrTooManyStreams, ErrOverBudget) reject the batch outright;
// detector errors (e.g. a non-finite point) reject the remainder, with
// everything before the bad point accepted, like Streamer.PushBatch.
func (m *Manager) PushBatch(id string, xs []float64) error { return m.h.PushBatch(id, xs) }

// PushBatchN is PushBatch reporting how many points were accepted —
// applied to the stream (and write-ahead logged when DataDir is set)
// before any error — so a client can resend exactly the unapplied
// remainder after a partial failure.
func (m *Manager) PushBatchN(id string, xs []float64) (int, error) { return m.h.PushBatchN(id, xs) }

// SnapshotStream forces a durability checkpoint of the stream right now,
// superseding its write-ahead log tail. It requires DataDir to be set and
// the stream to be live.
func (m *Manager) SnapshotStream(id string) error { return m.h.SnapshotStream(id) }

// ReplayStream re-derives a stream's recent events from its persisted
// state: the last checkpoint is restored into a detached detector, the
// logged tail is re-pushed through it, and fn is called for every event
// confirmed during the replay with the hop (detection run) index that
// confirmed it. Determinism makes the output exact — these are precisely
// the events a crash-restart at the last checkpoint would re-announce.
// The live stream is not disturbed. Returns the number of tail points
// replayed; fn returning an error aborts the replay. Requires DataDir.
func (m *Manager) ReplayStream(id string, fn func(hop int, a Anomaly) error) (int, error) {
	return m.h.ReplayStream(id, func(hop int, ev stream.Event) error {
		return fn(hop, Anomaly{Pos: ev.Pos, Length: ev.Length, Density: ev.Density})
	})
}

// Subscribe registers for confirmed anomaly events — one stream's, or
// every stream's with id "". Events arrive in per-stream order on a
// channel buffering about buf events (minimum 1; <= 0 selects
// DefaultEventBuffer). A full channel applies backpressure to every
// stream matching the subscription's filter — it blocks their delivery
// rather than dropping events — so keep receiving until you cancel.
// Other subscriptions and non-matching streams are unaffected. The
// channel is closed when the manager closes, and also shortly after
// cancel (which is idempotent); a canceled subscriber should simply stop
// reading.
func (m *Manager) Subscribe(id string, buf int) (<-chan StreamEvent, func()) {
	if buf <= 0 {
		buf = DefaultEventBuffer
	}
	in, cancelIn := m.h.Subscribe(id, buf)
	// The converter stage adds no meaningful capacity: the documented
	// buffer lives in the broker subscription.
	out := make(chan StreamEvent)
	stop := make(chan struct{})
	go func() {
		defer close(out)
		for {
			select {
			case ev, ok := <-in:
				if !ok {
					return
				}
				se := StreamEvent{
					Stream:  ev.Stream,
					Anomaly: Anomaly{Pos: ev.Anomaly.Pos, Length: ev.Anomaly.Length, Density: ev.Anomaly.Density},
					Health:  ev.Health,
					Cause:   ev.Cause,
				}
				select {
				case out <- se:
				case <-stop:
					return
				}
			case <-stop:
				return
			}
		}
	}()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			cancelIn()
			close(stop)
		})
	}
	return out, cancel
}

// Anomalies returns the stream's current top-K ranking within its
// retained horizon — the multi-stream analogue of Streamer.Anomalies. The
// stream must exist.
func (m *Manager) Anomalies(id string) ([]Anomaly, error) {
	evs, err := m.h.Anomalies(id)
	if err != nil {
		return nil, err
	}
	out := make([]Anomaly, len(evs))
	for i, e := range evs {
		out[i] = Anomaly{Pos: e.Pos, Length: e.Length, Density: e.Density}
	}
	return out, nil
}

// CloseStream flushes the stream (delivering its final events to
// subscribers), releases its memory, and returns its final stats.
func (m *Manager) CloseStream(id string) (StreamStats, error) {
	st, err := m.h.CloseStream(id)
	if err != nil {
		return StreamStats{}, err
	}
	return fromStats(st), nil
}

// EvictIdle evicts every stream idle for at least IdleAfter (no-op when
// IdleAfter is zero), delivering their final events, and returns the
// final stats of the evicted streams. Long-running servers call it on a
// timer so idle streams are reclaimed even when no limit forces the
// issue.
func (m *Manager) EvictIdle() []StreamStats {
	evicted := m.h.EvictIdle()
	out := make([]StreamStats, len(evicted))
	for i, st := range evicted {
		out[i] = fromStats(st)
	}
	return out
}

// StreamStats returns one live stream's snapshot.
func (m *Manager) StreamStats(id string) (StreamStats, error) {
	st, err := m.h.StreamStats(id)
	if err != nil {
		return StreamStats{}, err
	}
	return fromStats(st), nil
}

// Stats returns a snapshot of every live stream plus the rolled-up
// accounting.
func (m *Manager) Stats() ManagerStats {
	st := m.h.Stats()
	out := ManagerStats{
		Streams:     make([]StreamStats, len(st.Streams)),
		TotalBytes:  st.TotalBytes,
		Evicted:     st.Evicted,
		Degraded:    st.Degraded,
		Quarantined: st.Quarantined,
	}
	for i, s := range st.Streams {
		out.Streams[i] = fromStats(s)
	}
	return out
}

// MemoryFootprint is the rolled-up retained-memory accounting across live
// streams, in bytes; the quantity MaxBytes bounds.
func (m *Manager) MemoryFootprint() int64 { return m.h.TotalBytes() }

// Len returns the number of live streams.
func (m *Manager) Len() int { return m.h.Len() }

// Close shuts the manager down: every stream is flushed (delivering its
// final events), all stream memory is released, and every subscriber
// channel is closed. Close is idempotent; later operations return
// ErrManagerClosed.
func (m *Manager) Close() error {
	err := m.h.Close()
	if m.b != nil {
		// The shared broker is closed after every shard is down, so final
		// events reach subscribers first.
		m.b.Close()
	}
	return err
}

func fromStats(st manager.StreamStats) StreamStats {
	return StreamStats{
		ID:          st.ID,
		Points:      st.Points,
		Events:      st.Events,
		MemoryBytes: st.MemoryBytes,
		Created:     st.Created,
		LastPush:    st.LastPush,
		Degraded:    st.Degraded,
		Quarantined: st.Quarantined,
		Fault:       st.Fault,
		Shard:       st.Shard,
	}
}

// RecoveryFailure records one stream directory that could not be recovered
// at startup: the manager skipped it (quarantining the id) instead of
// aborting, so one corrupt or unreadable directory never blocks every
// other stream from coming back.
type RecoveryFailure struct {
	// Stream is the id whose persisted state failed to recover.
	Stream string
	// Err describes why recovery failed.
	Err error
}

// RecoveryFailures reports the stream directories that failed to recover
// when the manager started (empty for a clean start). Each failed id is
// quarantined: operations on it return ErrStreamQuarantined, its on-disk
// state is preserved for inspection, and CloseStream deletes it.
func (m *Manager) RecoveryFailures() []RecoveryFailure {
	fs := m.h.RecoveryFailures()
	out := make([]RecoveryFailure, len(fs))
	for i, f := range fs {
		out[i] = RecoveryFailure{Stream: f.Stream, Err: f.Err}
	}
	return out
}
